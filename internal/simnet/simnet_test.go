package simnet

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func echoHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "host=%s path=%s remote=%s ua=%s", r.Host, r.URL.Path, r.RemoteAddr, r.UserAgent())
	})
}

func TestRegisterAllocatesPoolRoundRobin(t *testing.T) {
	t.Parallel()
	n := New([]string{"10.0.0.1", "10.0.0.2"})
	a := n.Register("a.example", echoHandler())
	b := n.Register("b.example", echoHandler())
	c := n.Register("c.example", echoHandler())
	if a.IP != "10.0.0.1" || b.IP != "10.0.0.2" || c.IP != "10.0.0.1" {
		t.Fatalf("IP allocation = %s,%s,%s; want round-robin over pool", a.IP, b.IP, c.IP)
	}
}

func TestDefaultServerPoolHas22Addresses(t *testing.T) {
	t.Parallel()
	pool := DefaultServerPool()
	if len(pool) != 22 {
		t.Fatalf("default pool size = %d, want 22 (paper's hosting IPs)", len(pool))
	}
	seen := map[string]bool{}
	for _, ip := range pool {
		if seen[ip] {
			t.Fatalf("duplicate IP %s in default pool", ip)
		}
		seen[ip] = true
	}
}

func TestRoundTripReachesHandler(t *testing.T) {
	t.Parallel()
	n := New(nil)
	n.Register("shop.example", echoHandler())
	client := NewClient(n, "198.51.100.9")
	req, _ := http.NewRequest("GET", "http://shop.example/products/index.php", nil)
	req.Header.Set("User-Agent", "Mozilla/5.0 test")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	got := string(body)
	for _, want := range []string{"host=shop.example", "path=/products/index.php", "remote=198.51.100.9:", "ua=Mozilla/5.0 test"} {
		if !strings.Contains(got, want) {
			t.Fatalf("response %q missing %q", got, want)
		}
	}
}

func TestRoundTripUnknownHost(t *testing.T) {
	t.Parallel()
	n := New(nil)
	client := NewClient(n, "198.51.100.9")
	_, err := client.Get("http://nope.example/")
	if err == nil || !errors.Is(err, ErrNoSuchHost) {
		t.Fatalf("err = %v, want ErrNoSuchHost", err)
	}
}

func TestHTTPSRequiresTLS(t *testing.T) {
	t.Parallel()
	n := New(nil)
	n.Register("secure.example", echoHandler())
	client := NewClient(n, "198.51.100.9")
	if _, err := client.Get("https://secure.example/"); !errors.Is(err, ErrTLSNotProvisioned) {
		t.Fatalf("https before EnableTLS: err = %v, want ErrTLSNotProvisioned", err)
	}
	if !n.EnableTLS("secure.example") {
		t.Fatal("EnableTLS reported missing host")
	}
	resp, err := client.Get("https://secure.example/")
	if err != nil {
		t.Fatalf("https after EnableTLS: %v", err)
	}
	resp.Body.Close()
}

func TestTakeDownMakesHostUnreachable(t *testing.T) {
	t.Parallel()
	n := New(nil)
	n.Register("bad.example", echoHandler())
	client := NewClient(n, "198.51.100.9")
	if resp, err := client.Get("http://bad.example/"); err != nil {
		t.Fatalf("before takedown: %v", err)
	} else {
		resp.Body.Close()
	}
	if !n.TakeDown("bad.example") {
		t.Fatal("TakeDown reported missing host")
	}
	if _, err := client.Get("http://bad.example/"); !errors.Is(err, ErrHostDown) {
		t.Fatalf("after takedown: err = %v, want ErrHostDown", err)
	}
}

func TestRequestsCounter(t *testing.T) {
	t.Parallel()
	n := New(nil)
	n.Register("a.example", echoHandler())
	client := NewClient(n, "198.51.100.9")
	for i := 0; i < 5; i++ {
		resp, err := client.Get("http://a.example/")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if got := n.Requests(); got != 5 {
		t.Fatalf("Requests() = %d, want 5", got)
	}
}

func TestPostBodyDelivered(t *testing.T) {
	t.Parallel()
	n := New(nil)
	var got string
	n.Register("form.example", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if err := r.ParseForm(); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		got = r.PostFormValue("login_email")
		w.WriteHeader(http.StatusNoContent)
	}))
	client := NewClient(n, "198.51.100.9")
	resp, err := client.PostForm("http://form.example/login.php", map[string][]string{
		"login_email": {"victim@example.com"},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got != "victim@example.com" {
		t.Fatalf("server saw login_email=%q, want victim@example.com", got)
	}
}

func TestRedirectsNotFollowedByDefault(t *testing.T) {
	t.Parallel()
	n := New(nil)
	n.Register("r.example", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Redirect(w, r, "http://elsewhere.example/", http.StatusFound)
	}))
	client := NewClient(n, "198.51.100.9")
	resp, err := client.Get("http://r.example/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusFound {
		t.Fatalf("status = %d, want 302 (redirect not followed)", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "http://elsewhere.example/" {
		t.Fatalf("Location = %q", loc)
	}
}

func TestExternalResolverOverrides(t *testing.T) {
	t.Parallel()
	n := New(nil)
	n.Register("real.example", echoHandler())
	n.SetResolver(resolverFunc(func(host string) (string, bool) {
		return "", false // NXDOMAIN for everything
	}))
	client := NewClient(n, "198.51.100.9")
	if _, err := client.Get("http://real.example/"); !errors.Is(err, ErrNoSuchHost) {
		t.Fatalf("err = %v, want ErrNoSuchHost when resolver says NXDOMAIN", err)
	}
}

type resolverFunc func(string) (string, bool)

func (f resolverFunc) ResolveA(host string) (string, bool) { return f(host) }

func TestHostsSorted(t *testing.T) {
	t.Parallel()
	n := New(nil)
	for _, name := range []string{"zeta.example", "alpha.example", "mid.example"} {
		n.Register(name, echoHandler())
	}
	got := n.Hosts()
	want := []string{"alpha.example", "mid.example", "zeta.example"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Hosts() = %v, want %v", got, want)
		}
	}
}

func TestContentTypeSniffedForHTML(t *testing.T) {
	t.Parallel()
	n := New(nil)
	n.Register("html.example", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "<!DOCTYPE html><html><body>hi</body></html>")
	}))
	client := NewClient(n, "198.51.100.9")
	resp, err := client.Get("http://html.example/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Fatalf("Content-Type = %q, want text/html", ct)
	}
}
