package simnet

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Transport routes HTTP requests to registered virtual hosts. It implements
// http.RoundTripper, so an *http.Client built on it behaves exactly like one
// talking to a real network.
//
// SourceIP and SourcePort are stamped into the server-side request's
// RemoteAddr so that host access logs attribute traffic to the caller — the
// paper's log analysis (request counts, unique IPs per engine) depends on it.
type Transport struct {
	Net        *Internet
	SourceIP   string // client address visible to the server; default 192.0.2.1
	SourcePort int    // default 40000
}

// NewClient returns an *http.Client whose traffic originates from sourceIP on
// the given virtual internet. Redirects are not followed automatically;
// callers that want browser-like redirect handling use internal/browser.
func NewClient(n *Internet, sourceIP string) *http.Client {
	return &http.Client{
		Transport: &Transport{Net: n, SourceIP: sourceIP},
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.Net == nil {
		return nil, fmt.Errorf("simnet: Transport has no Internet")
	}
	hostname := req.URL.Hostname()
	if hostname == "" {
		return nil, fmt.Errorf("simnet: request has no host: %s", req.URL)
	}
	host, err := t.Net.resolveHost(hostname)
	if err != nil {
		return nil, err
	}
	if host.Down {
		return nil, fmt.Errorf("%w: %s", ErrHostDown, hostname)
	}
	switch req.URL.Scheme {
	case "http":
	case "https":
		if !host.TLS {
			return nil, fmt.Errorf("%w: %s", ErrTLSNotProvisioned, hostname)
		}
	default:
		return nil, fmt.Errorf("simnet: unsupported scheme %q", req.URL.Scheme)
	}

	srvReq, err := t.serverRequest(req)
	if err != nil {
		return nil, err
	}
	rec := newRecorder()
	host.Handler.ServeHTTP(rec, srvReq)
	t.Net.countRequest()
	return rec.response(req), nil
}

// serverRequest converts the client-side request into the request the virtual
// server observes.
func (t *Transport) serverRequest(req *http.Request) (*http.Request, error) {
	var body io.ReadCloser = http.NoBody
	if req.Body != nil {
		b, err := io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("simnet: reading request body: %w", err)
		}
		body = io.NopCloser(bytes.NewReader(b))
	}
	out := req.Clone(req.Context())
	out.Body = body
	out.RequestURI = req.URL.RequestURI()
	ip := t.SourceIP
	if ip == "" {
		ip = "192.0.2.1"
	}
	port := t.SourcePort
	if port == 0 {
		port = 40000
	}
	out.RemoteAddr = fmt.Sprintf("%s:%d", ip, port)
	out.Host = req.URL.Host
	if out.Header.Get("Host") != "" {
		out.Header.Del("Host")
	}
	return out, nil
}

// recorder is a minimal http.ResponseWriter capturing the handler's output.
type recorder struct {
	code   int
	header http.Header
	body   bytes.Buffer
	wrote  bool
}

func newRecorder() *recorder {
	return &recorder{code: http.StatusOK, header: make(http.Header)}
}

func (r *recorder) Header() http.Header { return r.header }

func (r *recorder) WriteHeader(code int) {
	if r.wrote {
		return
	}
	r.wrote = true
	r.code = code
}

func (r *recorder) Write(p []byte) (int, error) {
	if !r.wrote {
		r.WriteHeader(http.StatusOK)
	}
	return r.body.Write(p)
}

func (r *recorder) response(req *http.Request) *http.Response {
	body := r.body.Bytes()
	resp := &http.Response{
		Status:        fmt.Sprintf("%d %s", r.code, http.StatusText(r.code)),
		StatusCode:    r.code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        r.header,
		Body:          io.NopCloser(bytes.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
	if resp.Header.Get("Content-Type") == "" && len(body) > 0 {
		resp.Header.Set("Content-Type", sniffContentType(body))
	}
	return resp
}

func sniffContentType(body []byte) string {
	trimmed := strings.TrimSpace(string(body[:min(len(body), 512)]))
	lower := strings.ToLower(trimmed)
	if strings.HasPrefix(lower, "<!doctype html") || strings.HasPrefix(lower, "<html") {
		return "text/html; charset=utf-8"
	}
	return http.DetectContentType(body)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
