package simnet

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Transport routes HTTP requests to registered virtual hosts. It implements
// http.RoundTripper, so an *http.Client built on it behaves exactly like one
// talking to a real network.
//
// SourceIP and SourcePort are stamped into the server-side request's
// RemoteAddr so that host access logs attribute traffic to the caller — the
// paper's log analysis (request counts, unique IPs per engine) depends on it.
type Transport struct {
	Net        *Internet
	SourceIP   string // client address visible to the server; default 192.0.2.1
	SourcePort int    // default 40000
	// Timeout is the client's patience budget for one exchange. It only
	// matters under fault injection: an injected latency above it fails the
	// round trip with ErrTimeout. Zero means wait forever.
	Timeout time.Duration

	// addr memoises the "ip:port" RemoteAddr string stamped on server-side
	// requests, keyed on the values it was built from. Browser transports
	// never change SourceIP, so their million victim visits share one
	// string; engine transports mutate SourceIP between visits (already a
	// single-goroutine contract) and rebuild only on change.
	addrIP   string
	addrPort int
	addr     string
}

// NewClient returns an *http.Client whose traffic originates from sourceIP on
// the given virtual internet. Redirects are not followed automatically;
// callers that want browser-like redirect handling use internal/browser.
func NewClient(n *Internet, sourceIP string) *http.Client {
	return &http.Client{
		Transport: &Transport{Net: n, SourceIP: sourceIP},
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
}

// RoundTrip implements http.RoundTripper.
//
//phishlint:hotpath
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.Net == nil {
		return nil, fmt.Errorf("simnet: Transport has no Internet")
	}
	hostname := req.URL.Hostname()
	if hostname == "" {
		return nil, fmt.Errorf("simnet: request has no host: %s", req.URL)
	}
	host, err := t.Net.resolveHost(hostname)
	if err != nil {
		return nil, err
	}
	if host.Down {
		return nil, fmt.Errorf("%w: %s", ErrHostDown, hostname)
	}
	switch req.URL.Scheme {
	case "http":
	case "https":
		if !host.TLS {
			return nil, fmt.Errorf("%w: %s", ErrTLSNotProvisioned, hostname)
		}
	default:
		return nil, fmt.Errorf("simnet: unsupported scheme %q", req.URL.Scheme)
	}

	var fault Fault
	if ff := t.Net.faultFunc(); ff != nil {
		fault = ff(hostname)
	}
	if fault.Reset {
		return nil, fmt.Errorf("%w: %s", ErrConnReset, hostname)
	}

	srvReq, err := t.serverRequest(req)
	if err != nil {
		return nil, err
	}
	rec := newRecorder()
	host.Handler.ServeHTTP(rec, srvReq)
	t.Net.countRequest()
	if t.Timeout > 0 && fault.Latency > t.Timeout {
		// The server handled the request (its logs show it); the client gave
		// up waiting for the response.
		rec.Close()
		return nil, fmt.Errorf("%w: %s after %v", ErrTimeout, hostname, t.Timeout)
	}
	if fault.TruncateBody {
		rec.body.Truncate(rec.body.Len() / 2)
	}
	return rec.response(req), nil
}

// serverRequest converts the client-side request into the request the virtual
// server observes.
//
//phishlint:hotpath
func (t *Transport) serverRequest(req *http.Request) (*http.Request, error) {
	var body io.ReadCloser = http.NoBody
	if req.Body != nil {
		b, err := io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("simnet: reading request body: %w", err)
		}
		body = io.NopCloser(bytes.NewReader(b))
	}
	// Shallow copy instead of req.Clone: the URL and header map are shared
	// with the client request. Handlers only read them (the virtual servers
	// never mutate an incoming request), and the handler has returned before
	// the client resumes, so the sharing is invisible to both sides — while
	// Clone's deep header copy was a double-digit share of visit allocations.
	out := new(http.Request)
	*out = *req
	out.Body = body
	out.RequestURI = req.URL.RequestURI()
	out.RemoteAddr = t.remoteAddr()
	out.Host = req.URL.Host
	if out.Header.Get("Host") != "" {
		out.Header = out.Header.Clone() // don't mutate the shared map
		out.Header.Del("Host")
	}
	return out, nil
}

// remoteAddr returns the cached client address, rebuilding it only when
// SourceIP or SourcePort changed since the last request.
//
//phishlint:hotpath
func (t *Transport) remoteAddr() string {
	ip := t.SourceIP
	if ip == "" {
		ip = "192.0.2.1"
	}
	port := t.SourcePort
	if port == 0 {
		port = 40000
	}
	if t.addr == "" || t.addrIP != ip || t.addrPort != port {
		t.addr = ip + ":" + strconv.Itoa(port) //phishlint:allow allocfree rebuilt only when the caller changes SourceIP/SourcePort, amortised across visits
		t.addrIP, t.addrPort = ip, port
	}
	return t.addr
}

// recorder is a minimal http.ResponseWriter capturing the handler's output.
// Recorders are pooled: the response body handed to the caller is the
// recorder itself (its reader field), and Close returns the recorder — body
// buffer included — to the pool. Ownership transfers on Close; a response
// whose body is never closed simply falls to the garbage collector.
type recorder struct {
	code   int
	header http.Header
	body   bytes.Buffer
	wrote  bool
	reader bytes.Reader
	closed bool
	// handed records whether response() gave the header map away. Close
	// must not clear a map a response holder may still read, but a recorder
	// closed before response() — the client-timeout path — can recycle its
	// map in place instead of allocating a fresh one.
	handed bool
}

var recorderPool = sync.Pool{
	New: func() any { return &recorder{code: http.StatusOK, header: make(http.Header)} },
}

func newRecorder() *recorder {
	r := recorderPool.Get().(*recorder)
	r.code = http.StatusOK
	r.wrote = false
	r.closed = false
	r.handed = false
	r.body.Reset()
	return r
}

func (r *recorder) Header() http.Header { return r.header }

func (r *recorder) WriteHeader(code int) {
	if r.wrote {
		return
	}
	r.wrote = true
	r.code = code
}

func (r *recorder) Write(p []byte) (int, error) {
	if !r.wrote {
		r.WriteHeader(http.StatusOK)
	}
	return r.body.Write(p)
}

// Read implements the response body.
func (r *recorder) Read(p []byte) (int, error) {
	if r.closed {
		return 0, fmt.Errorf("simnet: read after body close")
	}
	return r.reader.Read(p)
}

// Close returns the recorder to the pool. The closed flag makes double-Close
// safe (only the first Close recycles) and turns use-after-close into an
// explicit error rather than silent data corruption.
//
//phishlint:hotpath
func (r *recorder) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	if r.handed {
		// The header map was handed to the response and may be read after
		// Close; give the recycled recorder a fresh one instead of clearing
		// the one the holder still sees.
		r.header = make(http.Header) //phishlint:allow allocfree fresh map only when the old one escaped with a response; the timeout path recycles in place
	} else {
		clear(r.header)
	}
	r.reader.Reset(nil)
	recorderPool.Put(r)
	return nil
}

func (r *recorder) response(req *http.Request) *http.Response {
	body := r.body.Bytes()
	r.reader.Reset(body)
	r.handed = true
	resp := &http.Response{
		Status:        statusLine(r.code),
		StatusCode:    r.code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        r.header,
		Body:          r,
		ContentLength: int64(len(body)),
		Request:       req,
	}
	if resp.Header.Get("Content-Type") == "" && len(body) > 0 {
		resp.Header.Set("Content-Type", sniffContentType(body))
	}
	return resp
}

// statusLine avoids a fmt.Sprintf per response for the codes the simulation
// actually serves.
func statusLine(code int) string {
	switch code {
	case http.StatusOK:
		return "200 OK"
	case http.StatusFound:
		return "302 Found"
	case http.StatusForbidden:
		return "403 Forbidden"
	case http.StatusNotFound:
		return "404 Not Found"
	case http.StatusInternalServerError:
		return "500 Internal Server Error"
	}
	return fmt.Sprintf("%d %s", code, http.StatusText(code))
}

func sniffContentType(body []byte) string {
	trimmed := strings.TrimSpace(string(body[:min(len(body), 512)]))
	lower := strings.ToLower(trimmed)
	if strings.HasPrefix(lower, "<!doctype html") || strings.HasPrefix(lower, "<html") {
		return "text/html; charset=utf-8"
	}
	return http.DetectContentType(body)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
