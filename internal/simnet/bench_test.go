package simnet

import (
	"io"
	"net/http"
	"testing"
)

func BenchmarkRoundTrip(b *testing.B) {
	n := New(nil)
	n.Register("bench.example", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	client := NewClient(n, "198.51.100.1")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Get("http://bench.example/")
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}
