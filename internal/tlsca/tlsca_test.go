package tlsca

import (
	"strings"
	"testing"
	"time"

	"areyouhuman/internal/simclock"
)

func TestIssueAndLookup(t *testing.T) {
	t.Parallel()
	clock := simclock.New(simclock.Epoch)
	ca := New(clock)
	cert := ca.Issue("Garden-Tools.example")
	if cert.Domain != "garden-tools.example" {
		t.Fatalf("domain = %q, want canonicalised", cert.Domain)
	}
	got, ok := ca.Lookup("garden-tools.example")
	if !ok || got.Serial != cert.Serial {
		t.Fatalf("Lookup = %+v,%v", got, ok)
	}
	if !cert.Valid("garden-tools.example", simclock.Epoch.Add(24*time.Hour)) {
		t.Fatal("fresh certificate should be valid")
	}
}

func TestCertificateExpiry(t *testing.T) {
	t.Parallel()
	clock := simclock.New(simclock.Epoch)
	ca := New(clock)
	cert := ca.Issue("a.example")
	if cert.Valid("a.example", simclock.Epoch.Add(Validity+time.Hour)) {
		t.Fatal("certificate should expire after Validity")
	}
	if cert.Valid("b.example", simclock.Epoch) {
		t.Fatal("certificate must not cover other domains")
	}
}

func TestTransparencyLogOrder(t *testing.T) {
	t.Parallel()
	clock := simclock.New(simclock.Epoch)
	ca := New(clock)
	ca.Issue("one.example")
	clock.Advance(time.Hour)
	ca.Issue("two.example")
	log := ca.TransparencyLog()
	if len(log) != 2 || log[0].Domain != "one.example" || log[1].Domain != "two.example" {
		t.Fatalf("log = %+v", log)
	}
	if log[1].Serial <= log[0].Serial {
		t.Fatal("serials must increase")
	}
}

func TestIssuedSince(t *testing.T) {
	t.Parallel()
	clock := simclock.New(simclock.Epoch)
	ca := New(clock)
	ca.Issue("old.example")
	cut := clock.Now()
	clock.Advance(time.Hour)
	ca.Issue("new.example")
	fresh := ca.IssuedSince(cut)
	if len(fresh) != 1 || fresh[0].Domain != "new.example" {
		t.Fatalf("IssuedSince = %+v", fresh)
	}
}

func TestReissueReplacesCurrent(t *testing.T) {
	t.Parallel()
	clock := simclock.New(simclock.Epoch)
	ca := New(clock)
	first := ca.Issue("renew.example")
	clock.Advance(60 * 24 * time.Hour)
	second := ca.Issue("renew.example")
	cur, _ := ca.Lookup("renew.example")
	if cur.Serial != second.Serial || cur.Serial == first.Serial {
		t.Fatalf("current = %+v", cur)
	}
	if len(ca.TransparencyLog()) != 2 {
		t.Fatal("CT log must keep both issuances")
	}
}

func TestCertificateString(t *testing.T) {
	t.Parallel()
	ca := New(simclock.New(simclock.Epoch))
	cert := ca.Issue("s.example")
	if s := cert.String(); !strings.Contains(s, "s.example") || !strings.Contains(s, "#1") {
		t.Fatalf("String = %q", s)
	}
}
