// Package tlsca simulates a certificate authority in the Let's Encrypt
// style, with a certificate-transparency-like issuance log.
//
// The paper issues TLS certificates for all 112 domains so that accidental
// human visitors leak nothing (Appendix B) and the sites look legitimately
// operated. Anti-phishing engines increasingly watch CT logs for fresh
// certificates on suspicious names; the issuance log makes that observable
// here too.
package tlsca

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"areyouhuman/internal/simclock"
)

// Validity is the lifetime of issued certificates (90 days, as Let's
// Encrypt).
const Validity = 90 * 24 * time.Hour

// Certificate is one issued certificate.
type Certificate struct {
	Serial    int
	Domain    string
	NotBefore time.Time
	NotAfter  time.Time
}

// Valid reports whether the certificate covers domain at time t.
func (c Certificate) Valid(domain string, t time.Time) bool {
	return strings.EqualFold(c.Domain, domain) && !t.Before(c.NotBefore) && !t.After(c.NotAfter)
}

// CA is the simulated certificate authority. The zero value is not usable;
// call New.
type CA struct {
	clock simclock.Clock

	mu     sync.Mutex
	serial int
	certs  map[string]Certificate
	log    []Certificate
}

// New returns a CA on the given clock (simclock.Real when nil).
func New(clock simclock.Clock) *CA {
	if clock == nil {
		clock = simclock.Real
	}
	return &CA{clock: clock, certs: make(map[string]Certificate)}
}

// Issue issues (or reissues) a certificate for domain and appends it to the
// transparency log.
func (ca *CA) Issue(domain string) Certificate {
	domain = strings.ToLower(strings.TrimSpace(domain))
	ca.mu.Lock()
	defer ca.mu.Unlock()
	ca.serial++
	now := ca.clock.Now()
	cert := Certificate{
		Serial:    ca.serial,
		Domain:    domain,
		NotBefore: now,
		NotAfter:  now.Add(Validity),
	}
	ca.certs[domain] = cert
	ca.log = append(ca.log, cert)
	return cert
}

// Lookup returns the current certificate for domain.
func (ca *CA) Lookup(domain string) (Certificate, bool) {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	c, ok := ca.certs[strings.ToLower(strings.TrimSpace(domain))]
	return c, ok
}

// TransparencyLog returns every issuance in order — the CT feed engines may
// watch.
func (ca *CA) TransparencyLog() []Certificate {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	out := make([]Certificate, len(ca.log))
	copy(out, ca.log)
	return out
}

// IssuedSince returns issuances strictly after t.
func (ca *CA) IssuedSince(t time.Time) []Certificate {
	var out []Certificate
	for _, c := range ca.TransparencyLog() {
		if c.NotBefore.After(t) {
			out = append(out, c)
		}
	}
	return out
}

// String implements fmt.Stringer for log lines.
func (c Certificate) String() string {
	return fmt.Sprintf("cert #%d for %s [%s, %s]", c.Serial, c.Domain,
		c.NotBefore.UTC().Format("2006-01-02"), c.NotAfter.UTC().Format("2006-01-02"))
}
