package report

import (
	"strings"
	"testing"
	"time"

	"areyouhuman/internal/simclock"
)

func TestQueueSubmitDrain(t *testing.T) {
	t.Parallel()
	clock := simclock.New(simclock.Epoch)
	q := NewQueue("GSB", ViaForm, clock)
	q.Submit("http://a.example/login.php", "researchers")
	clock.Advance(time.Minute)
	q.Submit("http://b.example/login.php", "researchers")

	reports := q.Drain()
	if len(reports) != 2 {
		t.Fatalf("Drain = %d reports", len(reports))
	}
	if reports[0].URL != "http://a.example/login.php" || !reports[0].At.Equal(simclock.Epoch) {
		t.Fatalf("report 0 = %+v", reports[0])
	}
	if reports[1].Via != ViaForm {
		t.Fatalf("via = %v", reports[1].Via)
	}
	if len(q.Drain()) != 0 {
		t.Fatal("second Drain should be empty")
	}
	if q.Total() != 2 {
		t.Fatalf("Total = %d", q.Total())
	}
}

func TestQueueMetadata(t *testing.T) {
	t.Parallel()
	q := NewQueue("OpenPhish", ViaEmail, nil)
	if q.Name() != "OpenPhish" || q.Via() != ViaEmail {
		t.Fatalf("metadata = %s,%s", q.Name(), q.Via())
	}
}

func TestMailSystemDelivery(t *testing.T) {
	t.Parallel()
	clock := simclock.New(simclock.Epoch)
	m := NewMailSystem(clock)
	m.Send("netcraft@example", "Researcher@Lab.example", "Report outcome", "blacklisted")
	inbox := m.Inbox("researcher@lab.example")
	if len(inbox) != 1 {
		t.Fatalf("inbox = %d mails", len(inbox))
	}
	if inbox[0].Subject != "Report outcome" || !inbox[0].At.Equal(simclock.Epoch) {
		t.Fatalf("mail = %+v", inbox[0])
	}
	if m.Sent() != 1 {
		t.Fatalf("Sent = %d", m.Sent())
	}
	if len(m.Inbox("nobody@example")) != 0 {
		t.Fatal("empty inbox expected")
	}
}

func TestInboxIsCopy(t *testing.T) {
	t.Parallel()
	m := NewMailSystem(nil)
	m.Send("a@x", "b@x", "s", "body")
	inbox := m.Inbox("b@x")
	inbox[0].Subject = "mutated"
	if m.Inbox("b@x")[0].Subject != "s" {
		t.Fatal("Inbox must return a copy")
	}
}

func TestAbuseNotifier(t *testing.T) {
	t.Parallel()
	m := NewMailSystem(nil)
	n := &AbuseNotifier{Mail: m, From: "notifications@phishlabs.example", AbuseContact: "abuse@hosting.example"}
	n.Notify("http://phish.example/login.php")
	inbox := m.Inbox("abuse@hosting.example")
	if len(inbox) != 1 {
		t.Fatalf("abuse inbox = %d", len(inbox))
	}
	if !strings.Contains(inbox[0].Body, "http://phish.example/login.php") {
		t.Fatalf("abuse mail body = %q", inbox[0].Body)
	}
}

func TestAbuseNotifierNilSafe(t *testing.T) {
	t.Parallel()
	(&AbuseNotifier{}).Notify("http://x.example/") // must not panic
}
