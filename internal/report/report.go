// Package report implements the phishing-report submission paths and the
// simulated e-mail system.
//
// The paper submits URLs via online forms (GSB, SmartScreen, NetCraft, YSB)
// or by e-mail (OpenPhish, PhishTank, APWG), never to more than one engine
// per URL. Engines answer through the same rails: NetCraft notifies the
// reporter of outcomes by mail, and PhishLabs sends abuse notifications to
// the hosting network's abuse address for URLs that reached the
// OpenPhish/PhishTank ecosystems.
package report

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"areyouhuman/internal/simclock"
)

// Via is a report submission channel.
type Via string

// Submission channels.
const (
	ViaForm  Via = "form"
	ViaEmail Via = "email"
)

// Report is one submitted phishing report.
type Report struct {
	URL string
	At  time.Time
	Via Via
	// Reporter identifies the submitting party (for outcome notifications).
	Reporter string
}

// Queue is an engine's inbound report queue.
type Queue struct {
	name  string
	via   Via
	clock simclock.Clock

	mu      sync.Mutex
	pending []Report
	total   int
}

// NewQueue returns an empty intake queue for an engine accepting reports
// over the given channel.
func NewQueue(name string, via Via, clock simclock.Clock) *Queue {
	if clock == nil {
		clock = simclock.Real
	}
	return &Queue{name: name, via: via, clock: clock}
}

// Name returns the owning engine's name.
func (q *Queue) Name() string { return q.name }

// Via returns the submission channel this engine accepts.
func (q *Queue) Via() Via { return q.via }

// Submit files a report.
func (q *Queue) Submit(url, reporter string) Report {
	r := Report{URL: url, At: q.clock.Now(), Via: q.via, Reporter: reporter}
	q.mu.Lock()
	q.pending = append(q.pending, r)
	q.total++
	q.mu.Unlock()
	return r
}

// Drain removes and returns all pending reports.
func (q *Queue) Drain() []Report {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := q.pending
	q.pending = nil
	return out
}

// Total reports how many reports were ever submitted.
func (q *Queue) Total() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.total
}

// Mail is one delivered message.
type Mail struct {
	From    string
	To      string
	Subject string
	Body    string
	At      time.Time
}

// MailSystem is the simulated e-mail infrastructure.
type MailSystem struct {
	clock simclock.Clock

	mu    sync.Mutex
	boxes map[string][]Mail
	sent  int
}

// NewMailSystem returns an empty mail system.
func NewMailSystem(clock simclock.Clock) *MailSystem {
	if clock == nil {
		clock = simclock.Real
	}
	return &MailSystem{clock: clock, boxes: make(map[string][]Mail)}
}

// Send delivers a message to the recipient's inbox.
func (m *MailSystem) Send(from, to, subject, body string) Mail {
	mail := Mail{From: from, To: strings.ToLower(to), Subject: subject, Body: body, At: m.clock.Now()}
	m.mu.Lock()
	m.boxes[mail.To] = append(m.boxes[mail.To], mail)
	m.sent++
	m.mu.Unlock()
	return mail
}

// Inbox returns a copy of the messages delivered to addr, oldest first.
func (m *MailSystem) Inbox(addr string) []Mail {
	m.mu.Lock()
	defer m.mu.Unlock()
	box := m.boxes[strings.ToLower(addr)]
	out := make([]Mail, len(box))
	copy(out, box)
	return out
}

// Sent reports total deliveries.
func (m *MailSystem) Sent() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sent
}

// AbuseNotifier sends PhishLabs-style abuse notifications for phishing URLs
// to the abuse contact responsible for the hosting addresses.
type AbuseNotifier struct {
	Mail *MailSystem
	// From is the notifier identity, e.g. "notifications@phishlabs.example".
	From string
	// AbuseContact is the hosting network's registered abuse address.
	AbuseContact string
}

// Notify sends one abuse notification about url.
func (n *AbuseNotifier) Notify(url string) {
	if n.Mail == nil || n.AbuseContact == "" {
		return
	}
	n.Mail.Send(n.From, n.AbuseContact,
		"Phishing content hosted on your network",
		fmt.Sprintf("A phishing URL hosted on your infrastructure was reported: %s\nPlease take it down.", url))
}
