// Package report implements the phishing-report submission paths and the
// simulated e-mail system.
//
// The paper submits URLs via online forms (GSB, SmartScreen, NetCraft, YSB)
// or by e-mail (OpenPhish, PhishTank, APWG), never to more than one engine
// per URL. Engines answer through the same rails: NetCraft notifies the
// reporter of outcomes by mail, and PhishLabs sends abuse notifications to
// the hosting network's abuse address for URLs that reached the
// OpenPhish/PhishTank ecosystems.
package report

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"areyouhuman/internal/simclock"
)

// Via is a report submission channel.
type Via string

// Submission channels.
const (
	ViaForm  Via = "form"
	ViaEmail Via = "email"
)

// Report is one submitted phishing report.
type Report struct {
	URL string
	At  time.Time
	Via Via
	// Reporter identifies the submitting party (for outcome notifications).
	Reporter string
}

// Queue is an engine's inbound report queue.
type Queue struct {
	name  string
	via   Via
	clock simclock.Clock

	mu      sync.Mutex
	pending []Report
	total   int
}

// NewQueue returns an empty intake queue for an engine accepting reports
// over the given channel.
func NewQueue(name string, via Via, clock simclock.Clock) *Queue {
	if clock == nil {
		clock = simclock.Real
	}
	return &Queue{name: name, via: via, clock: clock}
}

// Name returns the owning engine's name.
func (q *Queue) Name() string { return q.name }

// Via returns the submission channel this engine accepts.
func (q *Queue) Via() Via { return q.via }

// Submit files a report.
func (q *Queue) Submit(url, reporter string) Report {
	r := Report{URL: url, At: q.clock.Now(), Via: q.via, Reporter: reporter}
	q.mu.Lock()
	q.pending = append(q.pending, r)
	q.total++
	q.mu.Unlock()
	return r
}

// Drain removes and returns all pending reports.
func (q *Queue) Drain() []Report {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := q.pending
	q.pending = nil
	return out
}

// Total reports how many reports were ever submitted.
func (q *Queue) Total() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.total
}

// Mail is one delivered message.
type Mail struct {
	From    string
	To      string
	Subject string
	Body    string
	At      time.Time
}

// MailSystem is the simulated e-mail infrastructure.
type MailSystem struct {
	clock simclock.Clock

	mu    sync.Mutex
	boxes map[string][]Mail
	sent  int

	// Sharded mode (see ShardBuffered): in-event sends stage per shard and
	// deliver at window barriers in stamp order, so inbox ordering is
	// independent of worker interleaving.
	src    simclock.StampSource
	shards [][]pendingMail
}

type pendingMail struct {
	mail  Mail
	stamp simclock.Stamp
	idx   int
}

// NewMailSystem returns an empty mail system.
func NewMailSystem(clock simclock.Clock) *MailSystem {
	if clock == nil {
		clock = simclock.Real
	}
	return &MailSystem{clock: clock, boxes: make(map[string][]Mail)}
}

// ShardBuffered switches the mail system into barrier-buffered mode for
// sharded execution: Send from inside an event stages the message on the
// sending shard, and PublishPending — registered as an OnBarrier callback —
// delivers staged mail in (At, shard, seq) stamp order. Inbox consumers (the
// monitoring pipeline, the abuse desk) poll on event cadences far coarser
// than a window, so barrier-deferred delivery is invisible to them while
// inbox order becomes a pure function of virtual time.
func (m *MailSystem) ShardBuffered(src simclock.StampSource, shards int) {
	if src == nil || shards <= 0 {
		return
	}
	m.src = src
	m.shards = make([][]pendingMail, shards)
}

// PublishPending delivers every staged message in stamp order. Call at a
// window barrier; a no-op in unbuffered mode.
func (m *MailSystem) PublishPending() {
	if m.shards == nil {
		return
	}
	var all []pendingMail
	for i := range m.shards {
		all = append(all, m.shards[i]...)
		m.shards[i] = m.shards[i][:0]
	}
	if len(all) == 0 {
		return
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].stamp == all[j].stamp {
			return all[i].idx < all[j].idx
		}
		return all[i].stamp.Less(all[j].stamp)
	})
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, p := range all {
		m.boxes[p.mail.To] = append(m.boxes[p.mail.To], p.mail)
		m.sent++
	}
}

// Send delivers a message to the recipient's inbox (at the next barrier, in
// sharded mode).
func (m *MailSystem) Send(from, to, subject, body string) Mail {
	mail := Mail{From: from, To: strings.ToLower(to), Subject: subject, Body: body, At: m.clock.Now()}
	if m.shards != nil {
		if stamp, ok := m.src.ExecStamp(); ok && stamp.Shard >= 0 && stamp.Shard < len(m.shards) {
			m.shards[stamp.Shard] = append(m.shards[stamp.Shard], pendingMail{mail: mail, stamp: stamp, idx: len(m.shards[stamp.Shard])})
			return mail
		}
	}
	m.mu.Lock()
	m.boxes[mail.To] = append(m.boxes[mail.To], mail)
	m.sent++
	m.mu.Unlock()
	return mail
}

// Inbox returns a copy of the messages delivered to addr, oldest first.
func (m *MailSystem) Inbox(addr string) []Mail {
	m.mu.Lock()
	defer m.mu.Unlock()
	box := m.boxes[strings.ToLower(addr)]
	out := make([]Mail, len(box))
	copy(out, box)
	return out
}

// Sent reports total deliveries.
func (m *MailSystem) Sent() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sent
}

// AbuseNotifier sends PhishLabs-style abuse notifications for phishing URLs
// to the abuse contact responsible for the hosting addresses.
type AbuseNotifier struct {
	Mail *MailSystem
	// From is the notifier identity, e.g. "notifications@phishlabs.example".
	From string
	// AbuseContact is the hosting network's registered abuse address.
	AbuseContact string
}

// Notify sends one abuse notification about url.
func (n *AbuseNotifier) Notify(url string) {
	if n.Mail == nil || n.AbuseContact == "" {
		return
	}
	n.Mail.Send(n.From, n.AbuseContact,
		"Phishing content hosted on your network",
		fmt.Sprintf("A phishing URL hosted on your infrastructure was reported: %s\nPlease take it down.", url))
}
