package blacklist

import (
	"testing"
	"time"

	"areyouhuman/internal/simclock"
)

// stampSrc is a settable StampSource so tests can play the role of the
// sharded scheduler's exec hook without running one.
type stampSrc struct {
	stamp simclock.Stamp
	ok    bool
}

func (s *stampSrc) ExecStamp() (simclock.Stamp, bool) { return s.stamp, s.ok }

func TestRemoveUnbuffered(t *testing.T) {
	t.Parallel()
	l := NewList("gsb", nil)
	url := "http://phish.example/login"
	if !l.Add(url, "gsb") || !l.Contains(url) {
		t.Fatal("setup add failed")
	}
	if !l.Remove(url) {
		t.Error("Remove of a listed URL reported false")
	}
	if l.Contains(url) || l.Len() != 0 {
		t.Error("URL survives removal")
	}
	if l.Remove(url) {
		t.Error("second Remove reported true")
	}
	// Delist-then-relist must behave like a fresh listing.
	if !l.Add(url, "netcraft") {
		t.Error("re-add after removal rejected")
	}
	if e, ok := l.Lookup(url); !ok || e.Source != "netcraft" {
		t.Errorf("re-added entry = %+v, %v", e, ok)
	}
}

func TestRemoveStagedMasksOwnShard(t *testing.T) {
	t.Parallel()
	l := NewList("gsb", nil)
	src := &stampSrc{ok: true, stamp: simclock.Stamp{At: simclock.Epoch, Shard: 0}}
	l.ShardBuffered(src, 2)
	url := "http://phish.example/login"

	// Publish an entry through the barrier path.
	if !l.Add(url, "gsb") {
		t.Fatal("staged add rejected")
	}
	l.PublishPending()
	if !l.Contains(url) {
		t.Fatal("published entry missing")
	}

	// Shard 0 stages a removal: its own readers stop seeing the entry at
	// once (read-your-writes) while shard 1 still sees the published state
	// until the barrier.
	src.stamp = simclock.Stamp{At: simclock.Epoch.Add(time.Hour), Shard: 0, Seq: 1}
	if !l.Remove(url) {
		t.Fatal("Remove of a published entry reported false")
	}
	if l.Contains(url) {
		t.Error("removing shard still sees the entry")
	}
	if l.Remove(url) {
		t.Error("double staged removal reported true")
	}
	src.stamp.Shard = 1
	if !l.Contains(url) {
		t.Error("other shard lost the entry before the barrier")
	}

	l.PublishPending()
	src.stamp.Shard = 0
	if l.Contains(url) || l.Len() != 0 {
		t.Error("entry survived the barrier publish")
	}
}

func TestRemoveStagedAddNeverPublished(t *testing.T) {
	t.Parallel()
	l := NewList("gsb", nil)
	src := &stampSrc{ok: true, stamp: simclock.Stamp{At: simclock.Epoch, Shard: 0}}
	l.ShardBuffered(src, 1)
	url := "http://phish.example/a"

	// Add and remove inside the same window: the entry must never publish.
	if !l.Add(url, "gsb") {
		t.Fatal("staged add rejected")
	}
	src.stamp.Seq = 1
	if !l.Remove(url) {
		t.Error("Remove of a staged add reported false")
	}
	// A re-add after the staged removal is a new listing again.
	src.stamp.Seq = 2
	if !l.Add(url, "apwg") {
		t.Error("re-add after staged removal rejected")
	}
	l.PublishPending()
	if e, ok := l.Lookup(url); !ok || e.Source != "apwg" {
		t.Errorf("after publish entry = %+v, %v (want the re-add to win)", e, ok)
	}
	if l.Len() != 1 {
		t.Errorf("Len = %d, want 1", l.Len())
	}
}
