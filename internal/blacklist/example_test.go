package blacklist_test

import (
	"fmt"
	"time"

	"areyouhuman/internal/blacklist"
	"areyouhuman/internal/simclock"
)

// The reCAPTCHA same-URL trick in one timeline: the verdict cache covers the
// malicious reload for up to the TTL even after the engine lists the URL.
func Example_cachingWindow() {
	clock := simclock.New(simclock.Epoch)
	gsb := blacklist.NewList("gsb", clock)
	client := &blacklist.CachingClient{List: gsb, Clock: clock, TTL: 30 * time.Minute}

	url := "https://victim-site.example/login.php"
	fmt.Println("first check:", client.Check(url)) // challenge page: safe

	clock.Advance(2 * time.Minute)
	gsb.Add(url, "gsb") // the engine lists it

	clock.Advance(3 * time.Minute)
	fmt.Println("within TTL:", client.Check(url)) // cached safe verdict

	clock.Advance(time.Hour)
	fmt.Println("after TTL:", client.Check(url))
	// Output:
	// first check: false
	// within TTL: false
	// after TTL: true
}

func ExampleCanonicalize() {
	fmt.Println(blacklist.Canonicalize("HTTP://Example.COM:80/Login.php?next=1#top"))
	// Output: http://example.com/Login.php?next=1
}
