// Package blacklist implements URL blacklists in the style of Google Safe
// Browsing v4: a server-side list with hash-prefix lookups, downloadable
// feed snapshots, and — crucially for the paper's reCAPTCHA result — a
// client-side verdict cache.
//
// Browsers do not re-query a URL they checked minutes ago; GSB Update API
// verdicts are cached for 5 to 60 minutes. The reCAPTCHA technique reloads
// the phishing payload under the *same URL*, so the cached "safe" verdict
// from the challenge page keeps covering the malicious content (Section
// 2.4).
package blacklist

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strings"
	"sync"
	"time"

	"areyouhuman/internal/simclock"
)

// Entry is one blacklisted URL.
type Entry struct {
	URL     string
	AddedAt time.Time
	// Source names who contributed the entry (the engine itself, or another
	// feed via sharing).
	Source string
}

// List is a blacklist. The zero value is not usable; call NewList.
type List struct {
	name  string
	clock simclock.Clock

	mu      sync.RWMutex
	entries map[string]Entry
	lookups int64

	// Sharded mode (see ShardBuffered): in-event additions stage on the
	// adding shard and publish at window barriers, so cross-shard readers
	// observe barrier-quantized state — independent of worker interleaving —
	// while the adding shard reads its own writes, exactly like a serial run.
	src    simclock.StampSource
	shards []*shardPending
}

// shardPending is one shard's staged operations (additions and removals, in
// staging order). Only the shard's draining worker touches it during a
// window; the barrier publisher reads it with all workers idle.
type shardPending struct {
	ops   []pendingOp
	index map[string]int // url -> index of the *latest* staged op
}

type pendingOp struct {
	entry  Entry
	remove bool
	stamp  simclock.Stamp
	idx    int
}

// ShardBuffered switches the list into barrier-buffered mode for sharded
// execution: Add from inside an event stages on the event's shard (visible
// to later same-shard readers immediately), and PublishPending — registered
// as an OnBarrier callback — merges staged additions into the list in
// (At, shard, seq) stamp order with first-source-wins semantics, so entry
// sources and AddedAt are identical for any worker count.
func (l *List) ShardBuffered(src simclock.StampSource, shards int) {
	if src == nil || shards <= 0 {
		return
	}
	l.src = src
	l.shards = make([]*shardPending, shards)
	for i := range l.shards {
		l.shards[i] = &shardPending{index: make(map[string]int)}
	}
}

// PublishPending merges every staged operation into the published list, in
// stamp order (additions first-source-wins, removals delete). Call at a
// window barrier; a no-op in unbuffered mode.
func (l *List) PublishPending() {
	if l.shards == nil {
		return
	}
	var all []pendingOp
	for _, sp := range l.shards {
		all = append(all, sp.ops...)
		sp.ops = sp.ops[:0]
		for k := range sp.index {
			delete(sp.index, k)
		}
	}
	if len(all) == 0 {
		return
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].stamp == all[j].stamp {
			return all[i].idx < all[j].idx
		}
		return all[i].stamp.Less(all[j].stamp)
	})
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, p := range all {
		if p.remove {
			delete(l.entries, p.entry.URL)
			continue
		}
		if _, dup := l.entries[p.entry.URL]; dup {
			continue
		}
		l.entries[p.entry.URL] = p.entry
	}
}

// shardPendingFor returns the staging buffer for the event running on the
// calling goroutine, or nil outside events / in unbuffered mode.
func (l *List) shardPendingFor() (*shardPending, simclock.Stamp, bool) {
	if l.shards == nil {
		return nil, simclock.Stamp{}, false
	}
	stamp, ok := l.src.ExecStamp()
	if !ok || stamp.Shard < 0 || stamp.Shard >= len(l.shards) {
		return nil, simclock.Stamp{}, false
	}
	return l.shards[stamp.Shard], stamp, true
}

// NewList returns an empty list (clock defaults to simclock.Real).
func NewList(name string, clock simclock.Clock) *List {
	if clock == nil {
		clock = simclock.Real
	}
	return &List{name: name, clock: clock, entries: make(map[string]Entry)}
}

// Name returns the list's name.
func (l *List) Name() string { return l.name }

// Canonicalize normalises a URL for matching: lower-cased scheme and host,
// fragment dropped, default port dropped, trailing slash on an empty path.
func Canonicalize(raw string) string {
	s := strings.TrimSpace(raw)
	if i := strings.IndexByte(s, '#'); i >= 0 {
		s = s[:i]
	}
	scheme := ""
	rest := s
	if i := strings.Index(s, "://"); i >= 0 {
		scheme = strings.ToLower(s[:i])
		rest = s[i+3:]
	}
	hostEnd := len(rest)
	for i := 0; i < len(rest); i++ {
		if rest[i] == '/' || rest[i] == '?' {
			hostEnd = i
			break
		}
	}
	host := strings.ToLower(rest[:hostEnd])
	host = strings.TrimSuffix(host, ":80")
	host = strings.TrimSuffix(host, ":443")
	path := rest[hostEnd:]
	if path == "" {
		path = "/"
	}
	if scheme == "" {
		scheme = "http"
	}
	return scheme + "://" + host + path
}

// Add inserts url. The first source to add a URL wins; re-adds are ignored
// so AddedAt records first-seen time, as blacklist feeds do.
func (l *List) Add(url, source string) bool {
	key := Canonicalize(url)
	if sp, stamp, ok := l.shardPendingFor(); ok {
		if i, hit := sp.index[key]; hit {
			if !sp.ops[i].remove {
				return false // duplicate staged addition
			}
			// The latest staged op is a removal: a re-add after it is new.
		} else {
			l.mu.RLock()
			_, dup := l.entries[key]
			l.mu.RUnlock()
			if dup {
				return false
			}
		}
		// AddedAt is the event's exact virtual deadline — what a serial run
		// records — not the publish-time clock position.
		sp.index[key] = len(sp.ops)
		sp.ops = append(sp.ops, pendingOp{
			entry: Entry{URL: key, AddedAt: stamp.At, Source: source},
			stamp: stamp,
			idx:   len(sp.ops),
		})
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, dup := l.entries[key]; dup {
		return false
	}
	l.entries[key] = Entry{URL: key, AddedAt: l.clock.Now(), Source: source}
	return true
}

// Contains reports whether url is listed.
func (l *List) Contains(url string) bool {
	_, ok := l.Lookup(url)
	return ok
}

// Remove delists url — what happens when a host is taken down and the engine
// re-verifies, or when a streaming campaign closes a URL's measurement
// window and purges its state so list size tracks in-flight URLs, not total
// URLs. In sharded mode the removal stages on the calling shard (masking the
// entry from the shard's own readers immediately) and publishes at the next
// barrier, ordered with additions by stamp. It reports whether the URL was
// listed (published or staged) at the time of the call.
func (l *List) Remove(url string) bool {
	key := Canonicalize(url)
	if sp, stamp, ok := l.shardPendingFor(); ok {
		listed := false
		if i, hit := sp.index[key]; hit {
			if sp.ops[i].remove {
				return false // already staged for removal
			}
			listed = true
		} else {
			l.mu.RLock()
			_, listed = l.entries[key]
			l.mu.RUnlock()
			if !listed {
				return false
			}
		}
		sp.index[key] = len(sp.ops)
		sp.ops = append(sp.ops, pendingOp{
			entry:  Entry{URL: key},
			remove: true,
			stamp:  stamp,
			idx:    len(sp.ops),
		})
		return listed
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.entries[key]
	delete(l.entries, key)
	return ok
}

// Lookup returns the entry for url. In sharded mode a reader sees the
// published (barrier-quantized) list plus its own shard's staged additions —
// read-your-writes for the URL's owning chain, deterministic deferral for
// everyone else.
func (l *List) Lookup(url string) (Entry, bool) {
	key := Canonicalize(url)
	l.mu.Lock()
	l.lookups++
	l.mu.Unlock()
	if sp, _, ok := l.shardPendingFor(); ok {
		if i, hit := sp.index[key]; hit {
			if sp.ops[i].remove {
				// A staged removal masks any published entry from the
				// removing shard's own readers, mirroring read-your-writes.
				return Entry{}, false
			}
			return sp.ops[i].entry, true
		}
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	e, ok := l.entries[key]
	return e, ok
}

// Len reports the number of entries.
func (l *List) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.entries)
}

// Lookups reports how many lookups were served.
func (l *List) Lookups() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.lookups
}

// Snapshot returns all entries ordered by AddedAt then URL — a feed
// download.
func (l *List) Snapshot() []Entry {
	l.mu.RLock()
	out := make([]Entry, 0, len(l.entries))
	for _, e := range l.entries {
		out = append(out, e)
	}
	l.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].AddedAt.Equal(out[j].AddedAt) {
			return out[i].URL < out[j].URL
		}
		return out[i].AddedAt.Before(out[j].AddedAt)
	})
	return out
}

// SnapshotBefore returns the feed as it stood at cutoff: only entries added
// strictly before that instant, in Snapshot order. A stale-feed fault serves
// consumers SnapshotBefore(now - staleness) instead of the live Snapshot.
func (l *List) SnapshotBefore(cutoff time.Time) []Entry {
	l.mu.RLock()
	out := make([]Entry, 0, len(l.entries))
	for _, e := range l.entries {
		if e.AddedAt.Before(cutoff) {
			out = append(out, e)
		}
	}
	l.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].AddedAt.Equal(out[j].AddedAt) {
			return out[i].URL < out[j].URL
		}
		return out[i].AddedAt.Before(out[j].AddedAt)
	})
	return out
}

// PrefixSize is the hash-prefix length in bytes (GSB v4 uses 4-byte
// prefixes).
const PrefixSize = 4

// HashPrefix returns the hex-encoded 4-byte SHA-256 prefix of the
// canonicalised URL — what privacy-preserving clients send instead of the
// URL.
func HashPrefix(url string) string {
	sum := sha256.Sum256([]byte(Canonicalize(url)))
	return hex.EncodeToString(sum[:PrefixSize])
}

// fullHash returns the full hex SHA-256 of the canonicalised URL.
func fullHash(url string) string {
	sum := sha256.Sum256([]byte(Canonicalize(url)))
	return hex.EncodeToString(sum[:])
}

// PrefixHit reports whether any listed URL shares the given hash prefix —
// the first round of the v4 Lookup protocol.
func (l *List) PrefixHit(prefix string) bool {
	return len(l.FullHashes(prefix)) > 0
}

// FullHashes returns the full hashes of listed URLs matching prefix — the
// second round, letting the client confirm locally without revealing which
// URL it visited.
func (l *List) FullHashes(prefix string) []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []string
	for url := range l.entries {
		h := fullHash(url)
		if strings.HasPrefix(h, prefix) {
			out = append(out, h)
		}
	}
	sort.Strings(out)
	return out
}

// CheckByHash runs the two-round protocol for a client-side URL.
func (l *List) CheckByHash(url string) bool {
	prefix := HashPrefix(url)
	want := fullHash(url)
	for _, h := range l.FullHashes(prefix) {
		if h == want {
			return true
		}
	}
	return false
}
