package blacklist

import (
	"testing"
	"testing/quick"
	"time"

	"areyouhuman/internal/simclock"
)

func TestCanonicalize(t *testing.T) {
	t.Parallel()
	cases := map[string]string{
		"HTTP://Example.COM/Path?q=1#frag": "http://example.com/Path?q=1",
		"http://example.com":               "http://example.com/",
		"https://Example.com:443/x":        "https://example.com/x",
		"http://example.com:80/x":          "http://example.com/x",
		"example.com/login.php":            "http://example.com/login.php",
		"  http://a.example/  ":            "http://a.example/",
	}
	for in, want := range cases {
		if got := Canonicalize(in); got != want {
			t.Errorf("Canonicalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestAddLookupContains(t *testing.T) {
	t.Parallel()
	clock := simclock.New(simclock.Epoch)
	l := NewList("gsb", clock)
	if !l.Add("http://phish.example/login.php", "gsb") {
		t.Fatal("first Add should succeed")
	}
	if l.Add("HTTP://PHISH.example/login.php#x", "other") {
		t.Fatal("duplicate Add (canonical-equal) should be ignored")
	}
	e, ok := l.Lookup("http://phish.example/login.php")
	if !ok || e.Source != "gsb" || !e.AddedAt.Equal(simclock.Epoch) {
		t.Fatalf("Lookup = %+v,%v", e, ok)
	}
	if !l.Contains("http://phish.example/login.php?") && l.Contains("http://other.example/") {
		t.Fatal("Contains mismatch")
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestSnapshotOrdered(t *testing.T) {
	t.Parallel()
	clock := simclock.New(simclock.Epoch)
	l := NewList("feed", clock)
	l.Add("http://b.example/", "x")
	clock.Advance(time.Minute)
	l.Add("http://a.example/", "x")
	snap := l.Snapshot()
	if len(snap) != 2 || snap[0].URL != "http://b.example/" || snap[1].URL != "http://a.example/" {
		t.Fatalf("Snapshot = %+v", snap)
	}
}

func TestHashPrefixProtocol(t *testing.T) {
	t.Parallel()
	l := NewList("gsb", simclock.New(simclock.Epoch))
	url := "http://phish.example/login.php"
	l.Add(url, "gsb")
	prefix := HashPrefix(url)
	if len(prefix) != PrefixSize*2 {
		t.Fatalf("prefix length = %d hex chars", len(prefix))
	}
	if !l.PrefixHit(prefix) {
		t.Fatal("prefix of a listed URL must hit")
	}
	if !l.CheckByHash("HTTP://PHISH.EXAMPLE/login.php") {
		t.Fatal("CheckByHash must match canonical-equal URLs")
	}
	if l.CheckByHash("http://innocent.example/") {
		t.Fatal("unlisted URL must not match")
	}
}

func TestLookupsCounter(t *testing.T) {
	t.Parallel()
	l := NewList("x", simclock.New(simclock.Epoch))
	l.Contains("http://a.example/")
	l.Contains("http://b.example/")
	if l.Lookups() != 2 {
		t.Fatalf("Lookups = %d", l.Lookups())
	}
}

func TestCachingClientCachesSafeVerdict(t *testing.T) {
	t.Parallel()
	clock := simclock.New(simclock.Epoch)
	l := NewList("gsb", clock)
	c := &CachingClient{List: l, Clock: clock, TTL: 30 * time.Minute}
	url := "http://phish.example/login.php"

	if c.Check(url) {
		t.Fatal("URL not yet listed")
	}
	// Engine blacklists it one minute later...
	clock.Advance(time.Minute)
	l.Add(url, "gsb")
	// ...but the client's cached "safe" verdict still covers it.
	if c.Check(url) {
		t.Fatal("cached safe verdict should mask the fresh listing — the reCAPTCHA window")
	}
	// After TTL expiry the truth comes through.
	clock.Advance(31 * time.Minute)
	if !c.Check(url) {
		t.Fatal("expired cache must re-query and see the listing")
	}
	queries, hits := c.Stats()
	if queries != 2 || hits != 1 {
		t.Fatalf("Stats = %d,%d; want 2 queries, 1 hit", queries, hits)
	}
}

func TestCachingClientDisabled(t *testing.T) {
	t.Parallel()
	clock := simclock.New(simclock.Epoch)
	l := NewList("gsb", clock)
	c := &CachingClient{List: l, Clock: clock, Disabled: true}
	url := "http://phish.example/login.php"
	c.Check(url)
	l.Add(url, "gsb")
	if !c.Check(url) {
		t.Fatal("with caching disabled the client sees listings immediately")
	}
}

func TestCachingClientTTLClamped(t *testing.T) {
	t.Parallel()
	c := &CachingClient{TTL: time.Second}
	if got := c.ttl(); got != MinCacheTTL {
		t.Fatalf("ttl = %v, want clamped to %v", got, MinCacheTTL)
	}
	c.TTL = 5 * time.Hour
	if got := c.ttl(); got != MaxCacheTTL {
		t.Fatalf("ttl = %v, want clamped to %v", got, MaxCacheTTL)
	}
	c.TTL = 0
	if got := c.ttl(); got != MaxCacheTTL/2 {
		t.Fatalf("default ttl = %v", got)
	}
}

// Property: canonicalisation is idempotent.
func TestQuickCanonicalizeIdempotent(t *testing.T) {
	t.Parallel()
	f := func(s string) bool {
		once := Canonicalize(s)
		return Canonicalize(once) == once
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: a URL added under any casing is always found again, and
// CheckByHash agrees with Contains.
func TestQuickAddFindAgreement(t *testing.T) {
	t.Parallel()
	f := func(host, path string) bool {
		l := NewList("q", simclock.New(simclock.Epoch))
		url := "http://h" + sanitize(host) + ".example/" + sanitize(path)
		l.Add(url, "src")
		return l.Contains(url) == l.CheckByHash(url) && l.Contains(url)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
			out = append(out, r)
		}
	}
	if len(out) > 12 {
		out = out[:12]
	}
	return string(out)
}
