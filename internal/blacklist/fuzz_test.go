package blacklist

import (
	"strings"
	"testing"
)

// FuzzCanonicalize checks idempotence and hash-prefix stability over
// arbitrary URL-ish input.
func FuzzCanonicalize(f *testing.F) {
	for _, s := range []string{
		"http://Example.com/Path?q=1#frag",
		"https://a.example:443/",
		"example.com",
		"://",
		"HTTP://HOST:80",
		strings.Repeat("a", 300),
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		once := Canonicalize(raw)
		if twice := Canonicalize(once); twice != once {
			t.Fatalf("not idempotent: %q -> %q -> %q", raw, once, twice)
		}
		if HashPrefix(raw) != HashPrefix(once) {
			t.Fatal("hash prefix must be canonicalisation-invariant")
		}
	})
}
