package blacklist

import (
	"fmt"
	"testing"

	"areyouhuman/internal/simclock"
)

func benchList(n int) *List {
	l := NewList("bench", simclock.New(simclock.Epoch))
	for i := 0; i < n; i++ {
		l.Add(fmt.Sprintf("http://host%d.example/login.php", i), "src")
	}
	return l
}

func BenchmarkLookup(b *testing.B) {
	l := benchList(10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !l.Contains("http://host5000.example/login.php") {
			b.Fatal("miss")
		}
	}
}

func BenchmarkHashPrefixCheck(b *testing.B) {
	l := benchList(1_000)
	url := "http://host500.example/login.php"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !l.CheckByHash(url) {
			b.Fatal("miss")
		}
	}
}
