package blacklist

import (
	"sync"
	"time"

	"areyouhuman/internal/simclock"
)

// Default verdict-cache bounds from the GSB v4 caching documentation the
// paper cites: results are "usually valid for 5 to 60 minutes".
const (
	MinCacheTTL = 5 * time.Minute
	MaxCacheTTL = 60 * time.Minute
)

// CachingClient is a browser-side blacklist client with verdict caching.
// Both safe and unsafe verdicts are cached for TTL; within that window the
// client answers from cache without consulting the list — which is exactly
// the window the reCAPTCHA same-URL trick exploits.
type CachingClient struct {
	List  *List
	Clock simclock.Clock
	// TTL is the verdict lifetime; clamped into [MinCacheTTL, MaxCacheTTL].
	// Zero selects MaxCacheTTL/2 (30 minutes).
	TTL time.Duration
	// Disabled turns caching off (the ablation case).
	Disabled bool

	mu      sync.Mutex
	cache   map[string]cachedVerdict
	queries int64
	hits    int64
}

type cachedVerdict struct {
	listed  bool
	expires time.Time
}

func (c *CachingClient) ttl() time.Duration {
	ttl := c.TTL
	if ttl == 0 {
		ttl = MaxCacheTTL / 2
	}
	if ttl < MinCacheTTL {
		ttl = MinCacheTTL
	}
	if ttl > MaxCacheTTL {
		ttl = MaxCacheTTL
	}
	return ttl
}

func (c *CachingClient) clock() simclock.Clock {
	if c.Clock == nil {
		return simclock.Real
	}
	return c.Clock
}

// Check reports whether url is blacklisted, consulting the cache first.
func (c *CachingClient) Check(url string) bool {
	key := Canonicalize(url)
	now := c.clock().Now()

	c.mu.Lock()
	if c.cache == nil {
		c.cache = make(map[string]cachedVerdict)
	}
	if !c.Disabled {
		if v, ok := c.cache[key]; ok && now.Before(v.expires) {
			c.hits++
			c.mu.Unlock()
			return v.listed
		}
	}
	c.mu.Unlock()

	listed := c.List.CheckByHash(key)

	c.mu.Lock()
	c.queries++
	if !c.Disabled {
		c.cache[key] = cachedVerdict{listed: listed, expires: now.Add(c.ttl())}
	}
	c.mu.Unlock()
	return listed
}

// Stats reports upstream queries and cache hits.
func (c *CachingClient) Stats() (queries, hits int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.queries, c.hits
}
