package evasion

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// alertGateMarker is the hidden form value proving the visitor confirmed the
// alert box, matching the 'getData' sentinel of Listing 2.
const alertGateMarker = "getData"

// alertScript is the Go port of Appendix C Listing 2: after the window
// loads, wait two seconds, show a modal confirm, and on confirmation build a
// hidden form carrying get_data=getData and submit it back to the same URL.
// A dismissal submits an empty form, also as in the listing.
//
// One deliberate fix relative to the published listing: the listing's
// `if (first_visit && already_served)` guard can never fire on a first GET
// (already_served is only true once credentials were posted), which
// contradicts the behaviour described in Section 2.2 and observed in the
// wild. We gate on `first_visit && !already_served` so the box appears on
// the first visit, which is what the paper's deployments measurably did
// (GSB bots confirmed it and retrieved the payload).
const alertScript = `
<script>
/* Creating JS check variables for the second page load */
var first_visit = %s;
var already_served = %s;
window.onload = function() {
  /* execute after the window is loaded completely */
  if (first_visit && !already_served) {
    setTimeout(get_real_data, 2000);
  }
};
function get_real_data() {
  var msg = 'Please sign in to continue...';
  var result = confirm(msg);
  var f = document.createElement('form');
  f.setAttribute('method', 'post');
  if (result) {
    /* dynamically generate and submit a form with hidden value 'getData' */
    var i = document.createElement('input');
    i.setAttribute('type', 'hidden');
    i.setAttribute('name', 'get_data');
    i.setAttribute('value', 'getData');
    f.appendChild(i);
  }
  document.body.appendChild(f);
  f.submit();
}
</script>
`

type alertBox struct {
	opts Options
	// frag holds the four fragment variants, indexed by
	// [firstVisit][alreadyServed], formatted once instead of per visit.
	frag [2][2]string
}

func newAlertBox(opts Options) http.Handler {
	a := &alertBox{opts: opts}
	bools := [2]string{"false", "true"}
	for fv := 0; fv < 2; fv++ {
		for as := 0; as < 2; as++ {
			a.frag[fv][as] = fmt.Sprintf(alertScript, bools[fv], bools[as])
		}
	}
	return a
}

func (a *alertBox) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		if err := r.ParseForm(); err == nil && r.PostFormValue("get_data") == alertGateMarker {
			// Anti-phishing engine or user managed to confirm the alert box.
			a.opts.log(r, ServePayload)
			a.opts.Payload.ServeHTTP(w, r)
			return
		}
	}
	a.opts.log(r, ServeBenign)
	firstVisit := 1
	if r.Method == http.MethodPost {
		firstVisit = 0
	}
	alreadyServed := 0
	if r.PostFormValue("login_email") != "" && r.PostFormValue("login_pass") != "" {
		alreadyServed = 1
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	io.WriteString(w, a.opts.renderInjected(r, a.frag[firstVisit][alreadyServed]))
}

// captureHTML renders a handler's response body for the given request.
func captureHTML(h http.Handler, r *http.Request) string {
	rec := &captureWriter{header: make(http.Header)}
	// Re-issue as GET so benign handlers render their normal page even when
	// the outer request was a POST probing the gate.
	req := r.Clone(r.Context())
	req.Method = http.MethodGet
	req.Body = http.NoBody
	h.ServeHTTP(rec, req)
	return rec.body.String()
}

type captureWriter struct {
	header http.Header
	body   bytes.Buffer
	code   int
}

func (c *captureWriter) Header() http.Header         { return c.header }
func (c *captureWriter) WriteHeader(code int)        { c.code = code }
func (c *captureWriter) Write(p []byte) (int, error) { return c.body.Write(p) }

// injectBeforeBodyEnd inserts fragment just before </body> (or appends when
// the page has no closing body tag).
func injectBeforeBodyEnd(html, fragment string) string {
	lower := strings.ToLower(html)
	if i := strings.LastIndex(lower, "</body>"); i >= 0 {
		return html[:i] + fragment + html[i:]
	}
	return html + fragment
}
