package evasion

import (
	"fmt"
	"io"
	"net/http"
	"sync"
)

// sessionCookie mirrors PHP's default session cookie name; the paper's
// session-based kits are PHP.
const sessionCookie = "PHPSESSID"

// sessionBased implements the multi-page flow of Section 2.3: the first page
// shows a persuader button ("Join Chat"); pressing it submits a form, and the
// second (malicious) page is revealed only to visitors who arrived through
// that submission with a server-side session minted on the first page.
type sessionBased struct {
	opts Options

	mu       sync.Mutex
	sessions map[string]bool // sid -> cover page served
	counter  int
}

func newSessionBased(opts Options) http.Handler {
	return &sessionBased{opts: opts, sessions: make(map[string]bool)}
}

func (s *sessionBased) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		if err := r.ParseForm(); err == nil && r.PostFormValue("proceed") == "1" && s.validSession(r) {
			s.opts.log(r, ServePayload)
			s.opts.Payload.ServeHTTP(w, r)
			return
		}
	}
	s.serveCover(w, r)
}

func (s *sessionBased) validSession(r *http.Request) bool {
	c, err := r.Cookie(sessionCookie)
	if err != nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[c.Value]
}

func (s *sessionBased) serveCover(w http.ResponseWriter, r *http.Request) {
	s.opts.log(r, ServeCover)
	// Mint a session unless the visitor already carries one, like PHP's
	// session_start().
	if _, err := r.Cookie(sessionCookie); err != nil {
		s.mu.Lock()
		s.counter++
		sid := fmt.Sprintf("sess%08d", s.counter)
		s.sessions[sid] = true
		s.mu.Unlock()
		http.SetCookie(w, &http.Cookie{Name: sessionCookie, Value: sid, Path: "/"})
	} else {
		c, _ := r.Cookie(sessionCookie)
		s.mu.Lock()
		s.sessions[c.Value] = true
		s.mu.Unlock()
	}
	const cover = `
<div class="invite">
  <h2>You are invited to a WhatsApp group chat</h2>
  <form method="post">
    <input type="hidden" name="proceed" value="1">
    <button type="submit">Join Chat</button>
  </form>
</div>
`
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	io.WriteString(w, s.opts.renderInjected(r, cover))
}
