package evasion

import (
	"io"
	"net/http"
	"sync"
)

// sessionCookie mirrors PHP's default session cookie name; the paper's
// session-based kits are PHP.
const sessionCookie = "PHPSESSID"

// sessionBased implements the multi-page flow of Section 2.3: the first page
// shows a persuader button ("Join Chat"); pressing it submits a form, and the
// second (malicious) page is revealed only to visitors who arrived through
// that submission with a server-side session minted on the first page.
type sessionBased struct {
	opts Options

	mu       sync.Mutex
	sessions map[string]bool // sid -> cover page served
	counter  int
}

func newSessionBased(opts Options) http.Handler {
	return &sessionBased{opts: opts, sessions: make(map[string]bool)}
}

func (s *sessionBased) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		if err := r.ParseForm(); err == nil && r.PostFormValue("proceed") == "1" && s.validSession(r) {
			s.opts.log(r, ServePayload)
			s.opts.Payload.ServeHTTP(w, r)
			return
		}
	}
	s.serveCover(w, r)
}

func (s *sessionBased) validSession(r *http.Request) bool {
	c, err := r.Cookie(sessionCookie)
	if err != nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[c.Value]
}

// mintSID renders "sess" + the counter zero-padded to eight digits —
// fmt.Sprintf("sess%08d", n) without fmt's argument boxing and verb
// parsing, since a session is minted for every cover-page visitor and the
// whole format is known at compile time. Both scratch arrays live on the
// stack; the only allocation is the returned string itself.
//
//phishlint:hotpath
func mintSID(n int) string {
	var digits [20]byte
	i := len(digits)
	v := uint64(n)
	for {
		i--
		digits[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	for len(digits)-i < 8 {
		i--
		digits[i] = '0'
	}
	var buf [24]byte
	b := append(buf[:0], "sess"...)
	b = append(b, digits[i:]...)
	return string(b)
}

func (s *sessionBased) serveCover(w http.ResponseWriter, r *http.Request) {
	s.opts.log(r, ServeCover)
	// Mint a session unless the visitor already carries one, like PHP's
	// session_start().
	if _, err := r.Cookie(sessionCookie); err != nil {
		s.mu.Lock()
		s.counter++
		sid := mintSID(s.counter)
		s.sessions[sid] = true
		s.mu.Unlock()
		http.SetCookie(w, &http.Cookie{Name: sessionCookie, Value: sid, Path: "/"})
	} else {
		c, _ := r.Cookie(sessionCookie)
		s.mu.Lock()
		s.sessions[c.Value] = true
		s.mu.Unlock()
	}
	const cover = `
<div class="invite">
  <h2>You are invited to a WhatsApp group chat</h2>
  <form method="post">
    <input type="hidden" name="proceed" value="1">
    <button type="submit">Join Chat</button>
  </form>
</div>
`
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	io.WriteString(w, s.opts.renderInjected(r, cover))
}
