package evasion

import (
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"
	"testing/quick"

	"areyouhuman/internal/simnet"
)

// These property tests treat each gate as a security boundary and fuzz raw
// requests against it: the payload must never be served unless the gate's
// exact condition is met, no matter what methods, fields, or values an
// adversary (or a confused crawler) throws at it.

// fuzzTarget deploys a technique and returns a raw request function
// reporting whether the response contained the payload marker.
func fuzzTarget(t *testing.T, technique Technique, opts Options) func(method string, form url.Values, cookie *http.Cookie) bool {
	t.Helper()
	opts.Payload = payloadHandler()
	opts.Benign = benignHandler()
	h, err := Wrap(technique, opts)
	if err != nil {
		t.Fatal(err)
	}
	net := simnet.New(nil)
	net.Register("fuzz.example", h)
	client := simnet.NewClient(net, "198.51.100.66")
	return func(method string, form url.Values, cookie *http.Cookie) bool {
		var req *http.Request
		if method == http.MethodPost {
			req, _ = http.NewRequest(method, "http://fuzz.example/login.php", strings.NewReader(form.Encode()))
			req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
		} else {
			req, _ = http.NewRequest(method, "http://fuzz.example/login.php?"+form.Encode(), nil)
		}
		if cookie != nil {
			req.AddCookie(cookie)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return strings.Contains(string(body), payloadMarker)
	}
}

// sanitizeField keeps quick-generated strings form-safe.
func sanitizeField(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r >= 32 && r < 127 {
			b.WriteRune(r)
		}
	}
	return b.String()
}

func TestQuickAlertBoxGate(t *testing.T) {
	t.Parallel()
	hit := fuzzTarget(t, AlertBox, Options{})
	f := func(val string, extraKey string, post bool) bool {
		val = sanitizeField(val)
		method := http.MethodGet
		if post {
			method = http.MethodPost
		}
		form := url.Values{"get_data": {val}}
		if k := sanitizeField(extraKey); k != "" {
			form.Set(k, "1")
		}
		served := hit(method, form, nil)
		want := post && val == alertGateMarker
		return served == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSessionGateNeedsMintedCookie(t *testing.T) {
	t.Parallel()
	hit := fuzzTarget(t, SessionBased, Options{})
	f := func(sid string, proceed string, post bool) bool {
		method := http.MethodGet
		if post {
			method = http.MethodPost
		}
		cookie := &http.Cookie{Name: sessionCookie, Value: sanitizeCookie(sid)}
		served := hit(method, url.Values{"proceed": {sanitizeField(proceed)}}, cookie)
		// A forged session id was never minted by the server, so the
		// payload must never be served regardless of the proceed value.
		return !served
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func sanitizeCookie(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
			b.WriteRune(r)
		}
	}
	if b.Len() == 0 {
		return "forged"
	}
	return b.String()
}

func TestQuickRecaptchaGateNeedsValidToken(t *testing.T) {
	t.Parallel()
	const magic = "03A-genuine-token"
	hit := fuzzTarget(t, Recaptcha, Options{
		WidgetHTML:  `<div class="g-recaptcha" data-sitekey="k" data-callback="capback" data-endpoint="http://svc.example/issue"></div>`,
		VerifyToken: func(tok string) bool { return tok == magic },
	})
	f := func(tok string, post bool) bool {
		tok = sanitizeField(tok)
		method := http.MethodGet
		if post {
			method = http.MethodPost
		}
		served := hit(method, url.Values{"gresponse": {tok}}, nil)
		want := post && tok == magic
		return served == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
	// And the genuine token does open the gate.
	if !hit(http.MethodPost, url.Values{"gresponse": {magic}}, nil) {
		t.Fatal("genuine token must serve the payload")
	}
}

func TestSessionMintedCookieOpensGate(t *testing.T) {
	t.Parallel()
	// Counterpart to the fuzz test: the legitimate flow (GET to mint, POST
	// with the minted cookie) does open the gate.
	opts := Options{Payload: payloadHandler(), Benign: benignHandler()}
	h, err := Wrap(SessionBased, opts)
	if err != nil {
		t.Fatal(err)
	}
	net := simnet.New(nil)
	net.Register("fuzz.example", h)
	client := simnet.NewClient(net, "198.51.100.67")

	resp, err := client.Get("http://fuzz.example/login.php")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	var minted *http.Cookie
	for _, c := range resp.Cookies() {
		if c.Name == sessionCookie {
			minted = c
		}
	}
	if minted == nil {
		t.Fatal("cover page must mint a session cookie")
	}
	req, _ := http.NewRequest(http.MethodPost, "http://fuzz.example/login.php",
		strings.NewReader(url.Values{"proceed": {"1"}}.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.AddCookie(minted)
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), payloadMarker) {
		t.Fatal("minted cookie + proceed must open the gate")
	}
}
