package evasion_test

import (
	"fmt"
	"net/http"
	"time"

	"areyouhuman/internal/browser"
	"areyouhuman/internal/evasion"
	"areyouhuman/internal/simnet"
)

// Deploy the alert-box technique and show that only a dialog-confirming
// visitor reaches the payload — the mechanism behind GSB's unique Table 2
// column.
func ExampleWrap() {
	payload := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `<html><head><title>Log In</title></head><body>PAYLOAD</body></html>`)
	})
	benign := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `<html><head><title>Garden Tips</title></head><body>tips</body></html>`)
	})
	handler, err := evasion.Wrap(evasion.AlertBox, evasion.Options{Payload: payload, Benign: benign})
	if err != nil {
		panic(err)
	}

	net := simnet.New(nil)
	net.Register("site.example", handler)

	confirming := browser.New(net, browser.Config{
		ExecuteScripts: true, AlertPolicy: browser.AlertConfirm, TimerBudget: time.Minute,
	})
	page, _ := confirming.Open("http://site.example/login.php")
	fmt.Println("confirming visitor sees:", page.Title())

	plain := browser.New(net, browser.Config{ExecuteScripts: false})
	page2, _ := plain.Open("http://site.example/login.php")
	fmt.Println("plain fetcher sees:", page2.Title())
	// Output:
	// confirming visitor sees: Log In
	// plain fetcher sees: Garden Tips
}
