// Package evasion implements the anti-analysis techniques the paper studies:
// the JavaScript alert box (Listing 2), the session-based multi-page flow,
// and Google reCAPTCHA gating (Listing 1) — plus a no-op control and the
// user-agent/IP web-cloaking baseline from Oest et al. used for comparison.
//
// Each technique wraps a phishing payload handler and a benign handler into
// one http.Handler deployed at the phishing URL. Whether a visitor reaches
// the payload depends entirely on their browser capabilities (script
// execution, dialog handling, form submission, CAPTCHA solving), not on who
// they claim to be — that is what makes human-verification evasion stronger
// than cloaking.
package evasion

import (
	"fmt"
	"net/http"
	"strings"
)

// Technique identifies one evasion technique.
type Technique int

// The studied techniques.
const (
	None Technique = iota
	AlertBox
	SessionBased
	Recaptcha
	Cloaking
)

// String returns the technique name used in tables and flags.
func (t Technique) String() string {
	switch t {
	case None:
		return "none"
	case AlertBox:
		return "alertbox"
	case SessionBased:
		return "session"
	case Recaptcha:
		return "recaptcha"
	case Cloaking:
		return "cloaking"
	default:
		return fmt.Sprintf("Technique(%d)", int(t))
	}
}

// Letter returns the single-letter code Table 2 uses (A, S, R).
func (t Technique) Letter() string {
	switch t {
	case AlertBox:
		return "A"
	case SessionBased:
		return "S"
	case Recaptcha:
		return "R"
	case Cloaking:
		return "C"
	default:
		return "-"
	}
}

// Parse converts a technique name back to its value.
func Parse(name string) (Technique, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "none", "":
		return None, nil
	case "alertbox", "alert", "a":
		return AlertBox, nil
	case "session", "session-based", "s":
		return SessionBased, nil
	case "recaptcha", "captcha", "r":
		return Recaptcha, nil
	case "cloaking", "cloak", "c":
		return Cloaking, nil
	}
	return None, fmt.Errorf("evasion: unknown technique %q", name)
}

// Techniques lists the three human-verification techniques of the main
// experiment, in the paper's column order.
func Techniques() []Technique { return []Technique{AlertBox, SessionBased, Recaptcha} }

// ServeKind classifies what one request was answered with; the server-side
// log analysis in Section 4 is built from these.
type ServeKind string

// Serve kinds.
const (
	ServeBenign    ServeKind = "benign"    // harmless content (gate not passed)
	ServeCover     ServeKind = "cover"     // session-based first page
	ServeChallenge ServeKind = "challenge" // CAPTCHA page
	ServePayload   ServeKind = "payload"   // the phishing content
)

// LogFunc observes every decision the evasion wrapper makes. kind tells
// whether this visitor got the payload.
type LogFunc func(r *http.Request, kind ServeKind)

// Options configures Wrap.
type Options struct {
	// Payload serves the phishing page; required.
	Payload http.Handler
	// Benign serves the harmless cover content; required for every
	// technique except None.
	Benign http.Handler
	// Log observes serve decisions (optional).
	Log LogFunc

	// Recaptcha fields.
	// WidgetHTML is the embeddable CAPTCHA widget markup (see
	// captcha.WidgetHTML).
	WidgetHTML string
	// VerifyToken validates a posted CAPTCHA response token, e.g.
	// (*captcha.Client).Verify.
	VerifyToken func(token string) bool

	// Cloaking fields.
	// BotUserAgents are substrings identifying crawler user agents.
	BotUserAgents []string
	// BotIPs are source addresses (exact or prefix ending in '.') known to
	// belong to security crawlers.
	BotIPs []string

	// RenderCache, when set, memoises the injected benign page per request
	// URI. Opt in only when Benign renders purely from the request URL; see
	// RenderCache for the exact contract.
	RenderCache *RenderCache
}

func (o Options) log(r *http.Request, kind ServeKind) {
	if o.Log != nil {
		o.Log(r, kind)
	}
}

// Wrap deploys technique t over the given payload/benign pair.
func Wrap(t Technique, opts Options) (http.Handler, error) {
	if opts.Payload == nil {
		return nil, fmt.Errorf("evasion: %s: Payload handler required", t)
	}
	if t != None && opts.Benign == nil {
		return nil, fmt.Errorf("evasion: %s: Benign handler required", t)
	}
	switch t {
	case None:
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			opts.log(r, ServePayload)
			opts.Payload.ServeHTTP(w, r)
		}), nil
	case AlertBox:
		return newAlertBox(opts), nil
	case SessionBased:
		return newSessionBased(opts), nil
	case Recaptcha:
		if opts.VerifyToken == nil || opts.WidgetHTML == "" {
			return nil, fmt.Errorf("evasion: recaptcha requires WidgetHTML and VerifyToken")
		}
		return newRecaptcha(opts), nil
	case Cloaking:
		return newCloaking(opts), nil
	default:
		return nil, fmt.Errorf("evasion: unknown technique %d", int(t))
	}
}
