package evasion

import (
	"net/http"

	"areyouhuman/internal/telemetry"
)

// MetricServes counts every serve decision an evasion wrapper makes, by
// technique and serve kind — the live view of Section 4's server-side log
// analysis.
const MetricServes = "phish_evasion_serves_total"

// Instrument returns a LogFunc that counts serve decisions in the set's
// registry and chains to next (which may be nil). Payload reveals on a real
// technique additionally emit a trace event — those are the "bot reached the
// phishing content" moments; the None control serves its payload to everyone,
// so it is counted but not traced. Without telemetry, next is returned
// unchanged.
func Instrument(set *telemetry.Set, t Technique, next LogFunc) LogFunc {
	if !set.Enabled() {
		return next
	}
	m := set.M()
	m.Describe(MetricServes, "Evasion-wrapper serve decisions, by technique and kind.")
	counters := map[ServeKind]*telemetry.Counter{}
	for _, kind := range []ServeKind{ServeBenign, ServeCover, ServeChallenge, ServePayload} {
		counters[kind] = m.Counter(MetricServes, "technique", t.String(), "kind", string(kind))
	}
	tr := set.T()
	return func(r *http.Request, kind ServeKind) {
		c := counters[kind]
		if c == nil {
			// Unknown kind: resolve from the (locked) registry rather than
			// mutating the shared map — real HTTP handlers run concurrently.
			c = m.Counter(MetricServes, "technique", t.String(), "kind", string(kind))
		}
		c.Inc()
		if kind == ServePayload && t != None {
			tr.Event("evasion.payload",
				telemetry.String("technique", t.String()),
				telemetry.String("host", r.Host),
				telemetry.String("ip", r.RemoteAddr),
				telemetry.String("user_agent", r.UserAgent()))
		}
		if next != nil {
			next(r, kind)
		}
	}
}
