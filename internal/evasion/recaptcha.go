package evasion

import (
	"fmt"
	"io"
	"net/http"
)

// capbackScript is the Go port of Appendix C Listing 1's client side: the
// CAPTCHA widget's callback dynamically generates a form (the page itself
// ships no HTML form tag), fills it with the response token, and submits it
// back to the *same URL*, so the browser's cached safety verdict for that
// URL keeps covering the now-malicious content.
const capbackScript = `
<script>
function capback(g_response) {
  var f = document.createElement('form');
  f.setAttribute('method', 'post');
  var i = document.createElement('input');
  i.setAttribute('type', 'hidden');
  i.setAttribute('name', 'gresponse');
  i.setAttribute('value', g_response);
  f.appendChild(i);
  document.body.appendChild(f);
  f.submit();
}
</script>
`

// recaptcha implements Listing 1's server side: a POST carrying a gresponse
// token that verifies against the CAPTCHA service serves the phishing
// payload; everything else serves the benign CAPTCHA challenge page.
type recaptcha struct {
	opts Options
	gate string // challenge fragment, formatted once
}

func newRecaptcha(opts Options) http.Handler {
	return &recaptcha{
		opts: opts,
		gate: fmt.Sprintf(`
<div class="captcha-gate">
  <p>Please verify that you are human to continue.</p>
  %s
</div>%s`, opts.WidgetHTML, capbackScript),
	}
}

func (c *recaptcha) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		if err := r.ParseForm(); err == nil {
			if token := r.PostFormValue("gresponse"); token != "" && c.opts.VerifyToken(token) {
				c.opts.log(r, ServePayload)
				c.opts.Payload.ServeHTTP(w, r)
				return
			}
		}
	}
	c.opts.log(r, ServeChallenge)
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	io.WriteString(w, c.opts.renderInjected(r, c.gate))
}
