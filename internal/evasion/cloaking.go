package evasion

import (
	"net/http"
	"strings"
)

// cloaking is the baseline technique from Oest et al. (PhishFarm) that the
// paper compares against: serve the payload to everyone except visitors
// whose user agent or source address looks like a security crawler. Unlike
// human verification, it decides on *claimed identity*, which crawlers can
// spoof — which is why blacklists still caught 23% of cloaked sites.
type cloaking struct{ opts Options }

func newCloaking(opts Options) http.Handler { return &cloaking{opts: opts} }

// DefaultBotUserAgents are crawler user-agent substrings cloaking kits
// commonly block.
var DefaultBotUserAgents = []string{
	"googlebot", "bingbot", "yandex", "crawler", "spider", "bot/", "curl", "python",
	"safebrowsing", "netcraft", "phishtank", "openphish", "apwg", "smartscreen",
}

func (c *cloaking) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if c.isBot(r) {
		c.opts.log(r, ServeBenign)
		c.opts.Benign.ServeHTTP(w, r)
		return
	}
	c.opts.log(r, ServePayload)
	c.opts.Payload.ServeHTTP(w, r)
}

func (c *cloaking) isBot(r *http.Request) bool {
	ua := strings.ToLower(r.UserAgent())
	agents := c.opts.BotUserAgents
	if agents == nil {
		agents = DefaultBotUserAgents
	}
	for _, marker := range agents {
		if strings.Contains(ua, marker) {
			return true
		}
	}
	ip := r.RemoteAddr
	if i := strings.LastIndexByte(ip, ':'); i >= 0 {
		ip = ip[:i]
	}
	for _, blocked := range c.opts.BotIPs {
		if strings.HasSuffix(blocked, ".") {
			if strings.HasPrefix(ip, blocked) {
				return true
			}
		} else if ip == blocked {
			return true
		}
	}
	return false
}
