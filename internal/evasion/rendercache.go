package evasion

import (
	"net/http"
	"sync"
)

// RenderCache memoises the benign-page render plus injected fragment that an
// evasion wrapper serves to gated visitors. Without it, every visitor that
// fails the gate re-runs the benign handler and re-concatenates the fragment
// — the single hottest render path in the simulation, since most engine
// traffic never passes a gate.
//
// Enabling the cache asserts that the Benign handler is a pure function of
// the request's URL (true for the generated hobby sites the experiment
// deploys, whose pages depend only on the path). The wrapper still calls
// Options.Log for every request and writes identical bytes on hits, so
// cached and uncached runs produce bit-identical logs and responses. Callers
// whose benign handlers consult anything else (cookies, time, state) must
// leave Options.RenderCache nil.
type RenderCache struct {
	mu sync.Mutex
	m  map[renderKey]string
}

// renderKey is the cache key. A comparable struct instead of a
// concatenated string: the hit path builds it on the stack and hashes the
// fields in place, where the old "path?query\x00fragment" key allocated a
// fresh string per gated request just to throw it away on a hit.
type renderKey struct {
	path, query, fragment string
}

// NewRenderCache returns an empty cache, typically shared by all mounts of
// one deployment.
func NewRenderCache() *RenderCache {
	return &RenderCache{m: make(map[renderKey]string)}
}

// rendered returns the benign page for r with fragment injected before
// </body>, caching per (request URI, fragment).
//
//phishlint:hotpath
func (c *RenderCache) rendered(o Options, r *http.Request, fragment string) string {
	key := renderKey{path: r.URL.Path, query: r.URL.RawQuery, fragment: fragment}
	c.mu.Lock()
	if page, ok := c.m[key]; ok {
		c.mu.Unlock()
		return page
	}
	c.mu.Unlock()
	page := injectBeforeBodyEnd(captureHTML(o.Benign, r), fragment) //phishlint:allow allocfree miss path renders once per (page, fragment), then every hit is allocation-free
	c.mu.Lock()
	c.m[key] = page
	c.mu.Unlock()
	return page
}

// renderInjected is the shared serve path for gate pages: benign render plus
// injected fragment, cached when the wrapper was built with a RenderCache.
func (o Options) renderInjected(r *http.Request, fragment string) string {
	if o.RenderCache == nil {
		return injectBeforeBodyEnd(captureHTML(o.Benign, r), fragment)
	}
	return o.RenderCache.rendered(o, r, fragment)
}
