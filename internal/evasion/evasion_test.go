package evasion

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"areyouhuman/internal/browser"
	"areyouhuman/internal/captcha"
	"areyouhuman/internal/simclock"
	"areyouhuman/internal/simnet"
)

const payloadMarker = "FAKE-LOGIN-PAYLOAD"

func payloadHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		io.WriteString(w, `<html><head><title>Log in to your account</title></head><body>
<div id="phish">`+payloadMarker+`</div>
<form action="/collect.php" method="post"><input name="login_email"><input name="login_pass" type="password"></form>
</body></html>`)
	})
}

func benignHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		io.WriteString(w, `<html><head><title>Garden Tips</title></head><body>
<h1>Ten tips for a better garden</h1><p>Totally harmless content.</p>
</body></html>`)
	})
}

// logRecorder collects serve decisions thread-safely.
type logRecorder struct {
	mu    sync.Mutex
	kinds []ServeKind
}

func (l *logRecorder) fn(r *http.Request, kind ServeKind) {
	l.mu.Lock()
	l.kinds = append(l.kinds, kind)
	l.mu.Unlock()
}

func (l *logRecorder) count(kind ServeKind) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, k := range l.kinds {
		if k == kind {
			n++
		}
	}
	return n
}

func deploy(t *testing.T, technique Technique, opts Options) (*simnet.Internet, string) {
	t.Helper()
	net := simnet.New(nil)
	h, err := Wrap(technique, opts)
	if err != nil {
		t.Fatal(err)
	}
	net.Register("victim-site.example", h)
	return net, "http://victim-site.example/wp-content/secure/login.php"
}

func TestNoneAlwaysServesPayload(t *testing.T) {
	t.Parallel()
	rec := &logRecorder{}
	net, urlStr := deploy(t, None, Options{Payload: payloadHandler(), Log: rec.fn})
	b := browser.New(net, browser.Config{})
	p, err := b.Open(urlStr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Text(), payloadMarker) {
		t.Fatal("None must always serve the payload")
	}
	if rec.count(ServePayload) != 1 {
		t.Fatalf("log = %v", rec.kinds)
	}
}

func botConfig(policy browser.AlertPolicy) browser.Config {
	return browser.Config{
		ExecuteScripts: true,
		AlertPolicy:    policy,
		TimerBudget:    30 * time.Second,
	}
}

func TestAlertBoxConfirmReachesPayload(t *testing.T) {
	t.Parallel()
	rec := &logRecorder{}
	net, urlStr := deploy(t, AlertBox, Options{Payload: payloadHandler(), Benign: benignHandler(), Log: rec.fn})
	b := browser.New(net, botConfig(browser.AlertConfirm))
	p, err := b.Open(urlStr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Text(), payloadMarker) {
		t.Fatalf("confirming bot should reach payload, got %q", p.Title())
	}
	if rec.count(ServePayload) != 1 || rec.count(ServeBenign) != 1 {
		t.Fatalf("log = %v, want one benign then one payload", rec.kinds)
	}
}

func TestAlertBoxDismissStaysBenign(t *testing.T) {
	t.Parallel()
	rec := &logRecorder{}
	net, urlStr := deploy(t, AlertBox, Options{Payload: payloadHandler(), Benign: benignHandler(), Log: rec.fn})
	b := browser.New(net, botConfig(browser.AlertDismiss))
	p, err := b.Open(urlStr)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(p.Text(), payloadMarker) {
		t.Fatal("dismissing the alert must not reveal the payload")
	}
	if rec.count(ServePayload) != 0 {
		t.Fatalf("log = %v, payload should never be served", rec.kinds)
	}
}

func TestAlertBoxIgnorePolicyBlocked(t *testing.T) {
	t.Parallel()
	rec := &logRecorder{}
	net, urlStr := deploy(t, AlertBox, Options{Payload: payloadHandler(), Benign: benignHandler(), Log: rec.fn})
	b := browser.New(net, botConfig(browser.AlertIgnore))
	p, err := b.Open(urlStr)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(p.Text(), payloadMarker) {
		t.Fatal("dialog-incapable bot must not reach payload")
	}
	if p.ScriptErr == nil {
		t.Fatal("dialog-incapable bot should record a script failure")
	}
	if rec.count(ServePayload) != 0 {
		t.Fatalf("log = %v", rec.kinds)
	}
}

func TestAlertBoxNonJSFetcherSeesBenign(t *testing.T) {
	t.Parallel()
	net, urlStr := deploy(t, AlertBox, Options{Payload: payloadHandler(), Benign: benignHandler()})
	b := browser.New(net, browser.Config{ExecuteScripts: false})
	p, err := b.Open(urlStr)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(p.Text(), payloadMarker) {
		t.Fatal("plain fetcher must see benign content")
	}
	if !strings.Contains(p.Text(), "garden") && !strings.Contains(p.Text(), "Garden") {
		t.Fatalf("benign content missing: %q", p.Text())
	}
}

func TestAlertBoxShortTimerBudgetNeverSeesDialog(t *testing.T) {
	t.Parallel()
	// A bot that executes scripts but leaves before the 2s timer fires.
	net, urlStr := deploy(t, AlertBox, Options{Payload: payloadHandler(), Benign: benignHandler()})
	cfg := botConfig(browser.AlertConfirm)
	cfg.TimerBudget = time.Second
	b := browser.New(net, cfg)
	p, err := b.Open(urlStr)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(p.Text(), payloadMarker) {
		t.Fatal("impatient bot should never see the dialog or payload")
	}
	if len(p.Dialogs) != 0 {
		t.Fatalf("Dialogs = %v, want none", p.Dialogs)
	}
}

func TestSessionBasedFormSubmitterReachesPayload(t *testing.T) {
	t.Parallel()
	rec := &logRecorder{}
	net, urlStr := deploy(t, SessionBased, Options{Payload: payloadHandler(), Benign: benignHandler(), Log: rec.fn})
	b := browser.New(net, browser.Config{})
	p, err := b.Open(urlStr)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(p.Text(), payloadMarker) {
		t.Fatal("cover page must not include payload")
	}
	forms := p.Forms()
	if len(forms) != 1 {
		t.Fatalf("cover page forms = %d, want the Join Chat form", len(forms))
	}
	p2, err := p.Submit(forms[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p2.Text(), payloadMarker) {
		t.Fatal("form-submitting visitor with session should reach payload")
	}
	if rec.count(ServeCover) != 1 || rec.count(ServePayload) != 1 {
		t.Fatalf("log = %v", rec.kinds)
	}
}

func TestSessionBasedDirectPostWithoutSessionFails(t *testing.T) {
	t.Parallel()
	rec := &logRecorder{}
	net, _ := deploy(t, SessionBased, Options{Payload: payloadHandler(), Benign: benignHandler(), Log: rec.fn})
	client := simnet.NewClient(net, "198.51.100.77")
	resp, err := client.PostForm("http://victim-site.example/wp-content/secure/login.php",
		map[string][]string{"proceed": {"1"}})
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(body), payloadMarker) {
		t.Fatal("sessionless POST must not reveal payload")
	}
	if rec.count(ServePayload) != 0 {
		t.Fatalf("log = %v", rec.kinds)
	}
}

func TestSessionBasedNonSubmittingBotStaysOnCover(t *testing.T) {
	t.Parallel()
	net, urlStr := deploy(t, SessionBased, Options{Payload: payloadHandler(), Benign: benignHandler()})
	b := browser.New(net, botConfig(browser.AlertConfirm))
	p, err := b.Open(urlStr)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(p.Text(), payloadMarker) {
		t.Fatal("merely opening the page must not reveal payload")
	}
	if !strings.Contains(p.Text(), "Join Chat") {
		t.Fatalf("cover persuader missing: %q", p.Text())
	}
}

// recaptchaDeployment wires a CAPTCHA service plus a protected site.
func recaptchaDeployment(t *testing.T, rec *logRecorder) (*simnet.Internet, string) {
	t.Helper()
	net := simnet.New(nil)
	svc := captcha.NewService(simclock.New(simclock.Epoch))
	sitekey, secret := svc.RegisterSite()
	net.Register("captcha-svc.example", svc.Handler())
	verifier := &captcha.Client{
		HTTP:    simnet.NewClient(net, "203.0.113.99"), // the phishing server's own egress
		BaseURL: "http://captcha-svc.example",
		Secret:  secret,
	}
	opts := Options{
		Payload:     payloadHandler(),
		Benign:      benignHandler(),
		WidgetHTML:  captcha.WidgetHTML("captcha-svc.example", sitekey, "capback"),
		VerifyToken: verifier.Verify,
	}
	if rec != nil {
		opts.Log = rec.fn
	}
	h, err := Wrap(Recaptcha, opts)
	if err != nil {
		t.Fatal(err)
	}
	net.Register("victim-site.example", h)
	return net, "http://victim-site.example/wp-content/secure/login.php"
}

func TestRecaptchaHumanReachesPayloadSameURL(t *testing.T) {
	t.Parallel()
	rec := &logRecorder{}
	net, urlStr := recaptchaDeployment(t, rec)
	human := browser.New(net, browser.Config{
		ExecuteScripts: true, AlertPolicy: browser.AlertConfirm,
		TimerBudget: time.Hour, CanSolveCAPTCHA: true,
	})
	p, err := human.Open(urlStr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Text(), payloadMarker) {
		t.Fatalf("human should pass the CAPTCHA gate, got %q", p.Title())
	}
	if got := "http://" + p.URL.Host + p.URL.Path; got != urlStr {
		t.Fatalf("URL changed to %s; technique must keep it identical", got)
	}
	if rec.count(ServeChallenge) != 1 || rec.count(ServePayload) != 1 {
		t.Fatalf("log = %v", rec.kinds)
	}
}

func TestRecaptchaBotsNeverReachPayload(t *testing.T) {
	t.Parallel()
	rec := &logRecorder{}
	net, urlStr := recaptchaDeployment(t, rec)
	for _, cfg := range []browser.Config{
		{ExecuteScripts: false},
		{ExecuteScripts: true, AlertPolicy: browser.AlertConfirm, TimerBudget: time.Minute},
		{ExecuteScripts: true, AlertPolicy: browser.AlertDismiss},
	} {
		b := browser.New(net, cfg)
		p, err := b.Open(urlStr)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(p.Text(), payloadMarker) {
			t.Fatalf("bot config %+v reached the payload", cfg)
		}
	}
	if rec.count(ServePayload) != 0 {
		t.Fatalf("log = %v, no payload should be served to bots", rec.kinds)
	}
}

func TestRecaptchaChallengeHasNoStaticForm(t *testing.T) {
	t.Parallel()
	net, urlStr := recaptchaDeployment(t, nil)
	b := browser.New(net, browser.Config{ExecuteScripts: false})
	p, err := b.Open(urlStr)
	if err != nil {
		t.Fatal(err)
	}
	if forms := p.Forms(); len(forms) != 0 {
		t.Fatalf("challenge page ships %d static forms; Listing 1 has none", len(forms))
	}
}

func TestRecaptchaForgedTokenRejected(t *testing.T) {
	t.Parallel()
	rec := &logRecorder{}
	net, urlStr := recaptchaDeployment(t, rec)
	client := simnet.NewClient(net, "198.51.100.50")
	resp, err := client.PostForm(urlStr, map[string][]string{"gresponse": {"03A-forged-1"}})
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(body), payloadMarker) {
		t.Fatal("forged token must not unlock payload")
	}
	if rec.count(ServePayload) != 0 {
		t.Fatalf("log = %v", rec.kinds)
	}
}

func TestCloakingBlocksByUserAgentAndIP(t *testing.T) {
	t.Parallel()
	rec := &logRecorder{}
	net := simnet.New(nil)
	h, err := Wrap(Cloaking, Options{
		Payload: payloadHandler(), Benign: benignHandler(), Log: rec.fn,
		BotIPs: []string{"198.51.100.200", "203.0.113."},
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Register("cloaked.example", h)

	fetch := func(ip, ua string) string {
		client := simnet.NewClient(net, ip)
		req, _ := http.NewRequest("GET", "http://cloaked.example/login.php", nil)
		req.Header.Set("User-Agent", ua)
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}

	if !strings.Contains(fetch("198.51.100.9", "Mozilla/5.0 Firefox/76.0"), payloadMarker) {
		t.Fatal("normal visitor should get payload")
	}
	if strings.Contains(fetch("198.51.100.9", "Mozilla/5.0 (compatible; Googlebot/2.1)"), payloadMarker) {
		t.Fatal("crawler UA must get benign page")
	}
	if strings.Contains(fetch("198.51.100.200", "Mozilla/5.0 Firefox/76.0"), payloadMarker) {
		t.Fatal("blocked exact IP must get benign page")
	}
	if strings.Contains(fetch("203.0.113.42", "Mozilla/5.0 Firefox/76.0"), payloadMarker) {
		t.Fatal("blocked IP prefix must get benign page")
	}
	if rec.count(ServePayload) != 1 || rec.count(ServeBenign) != 3 {
		t.Fatalf("log = %v", rec.kinds)
	}
}

func TestWrapValidation(t *testing.T) {
	t.Parallel()
	if _, err := Wrap(AlertBox, Options{Payload: payloadHandler()}); err == nil {
		t.Fatal("missing Benign should fail")
	}
	if _, err := Wrap(None, Options{}); err == nil {
		t.Fatal("missing Payload should fail")
	}
	if _, err := Wrap(Recaptcha, Options{Payload: payloadHandler(), Benign: benignHandler()}); err == nil {
		t.Fatal("recaptcha without verifier should fail")
	}
}

func TestTechniqueStringsAndParse(t *testing.T) {
	t.Parallel()
	for _, tc := range []Technique{None, AlertBox, SessionBased, Recaptcha, Cloaking} {
		parsed, err := Parse(tc.String())
		if err != nil || parsed != tc {
			t.Fatalf("Parse(%q) = %v, %v", tc.String(), parsed, err)
		}
	}
	if _, err := Parse("quantum"); err == nil {
		t.Fatal("unknown name should fail to parse")
	}
	if AlertBox.Letter() != "A" || SessionBased.Letter() != "S" || Recaptcha.Letter() != "R" {
		t.Fatal("Table 2 letters wrong")
	}
	if len(Techniques()) != 3 {
		t.Fatal("main experiment studies exactly three techniques")
	}
}
