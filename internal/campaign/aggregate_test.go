package campaign

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func testAggregator(shards int) *Aggregator {
	return NewAggregator(shards,
		[]string{"gsb", "netcraft"},
		[]string{"PayPal", "Gmail"},
		[]string{"A", "R"})
}

func TestAggregatorMerge(t *testing.T) {
	a := testAggregator(4)
	// Spread the same cell's outcomes across shards; Results must merge them.
	for shard := 0; shard < 4; shard++ {
		a.Observe(shard, Outcome{
			Engine: "gsb", Brand: "PayPal", Technique: "A",
			URL:    fmt.Sprintf("https://u%d.example/", shard),
			Listed: true, Lag: time.Duration(shard+1) * 10 * time.Minute,
		})
	}
	a.Observe(1, Outcome{Engine: "netcraft", Brand: "Gmail", Technique: "R", Shared: 2})

	res := a.Results(5, ProviderFree)
	if res.Deployed != 5 || res.Listed != 4 || res.Shared != 2 {
		t.Fatalf("totals = deployed %d listed %d shared %d, want 5/4/2", res.Deployed, res.Listed, res.Shared)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("got %d cells, want 2 (empty cells must be skipped): %+v", len(res.Cells), res.Cells)
	}
	c := res.Cells[0]
	if c.Engine != "gsb" || c.Deployed != 4 || c.Listed != 4 {
		t.Fatalf("gsb cell = %+v", c)
	}
	if len(c.Exemplars) != 4 {
		t.Fatalf("exemplars = %v, want all 4 listed URLs", c.Exemplars)
	}
	if c.P50 != 20*time.Minute {
		t.Errorf("merged p50 = %v, want 20m", c.P50)
	}
	if len(res.Engines) != 2 {
		t.Fatalf("engine rows = %d, want 2", len(res.Engines))
	}
	if res.Engines[0].Engine != "gsb" || res.Engines[1].Engine != "netcraft" {
		t.Errorf("engine order = %s, %s; want dimension order", res.Engines[0].Engine, res.Engines[1].Engine)
	}
}

func TestAggregatorUnknownDimensionsIgnored(t *testing.T) {
	a := testAggregator(1)
	a.Observe(0, Outcome{Engine: "nope", Brand: "PayPal", Technique: "A"})
	a.Observe(0, Outcome{Engine: "gsb", Brand: "nope", Technique: "A"})
	a.Observe(0, Outcome{Engine: "gsb", Brand: "PayPal", Technique: "Z"})
	// Out-of-range shards clamp to 0 instead of panicking.
	a.Observe(99, Outcome{Engine: "gsb", Brand: "PayPal", Technique: "A"})
	a.Observe(-1, Outcome{Engine: "gsb", Brand: "PayPal", Technique: "A"})
	res := a.Results(5, ProviderFree)
	if res.Deployed != 2 {
		t.Errorf("deployed = %d, want 2 (unknown dimensions dropped, bad shards clamped)", res.Deployed)
	}
}

func TestCellExemplarRing(t *testing.T) {
	var c cell
	for i := 0; i < ExemplarCap+3; i++ {
		c.observe(Outcome{URL: fmt.Sprintf("u%d", i), Listed: true})
	}
	got := c.exemplars()
	want := []string{"u3", "u4", "u5", "u6"} // oldest-first, earliest evicted
	if len(got) != len(want) {
		t.Fatalf("exemplars = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("exemplars = %v, want %v", got, want)
		}
	}
	// Unlisted outcomes count deploys but never enter the ring.
	var d cell
	d.observe(Outcome{URL: "unlisted"})
	if d.deployed != 1 || len(d.exemplars()) != 0 {
		t.Errorf("unlisted outcome: deployed=%d exemplars=%v", d.deployed, d.exemplars())
	}
}

func TestRenderTableShape(t *testing.T) {
	a := testAggregator(1)
	a.Observe(0, Outcome{
		Engine: "gsb", Brand: "PayPal", Technique: "A",
		URL: "https://x.example/", Listed: true, Taint: true, Lag: 90 * time.Minute,
	})
	res := a.Results(1, ProviderFree)
	res.VirtualDuration = 16 * time.Hour
	res.Providers = []ProviderReport{{Apex: "pages.example", Mounted: 1, Evicted: 1, Sweeps: 2, Takedowns: 1}}
	res.Watched = 4
	res.Sighted = 3
	// Wall-clock fields must never reach the rendered table: the CI smoke
	// job byte-compares tables across worker counts and machines.
	res.PeakHeapBytes = 123456789
	res.WallSeconds = 9.87
	res.URLsPerSec = 1234

	tb := res.RenderTable()
	for _, want := range []string{
		"campaign: 1 URLs, provider=free, virtual span 16h",
		"gsb",
		"PayPal",
		"90m",
		"total: deployed=1 listed=1 ip-rep=1 shared=0",
		"monitor: sighted 3 of 4 watched exemplars",
		"provider pages.example: mounted=1 evicted=1 sweeps=2 takedowns=1",
	} {
		if !strings.Contains(tb, want) {
			t.Errorf("table missing %q:\n%s", want, tb)
		}
	}
	for _, banned := range []string{"123456789", "9.87", "1234", "MiB", "sec"} {
		if strings.Contains(tb, banned) {
			t.Errorf("table leaks wall-clock figure %q:\n%s", banned, tb)
		}
	}
	// No listings renders "-" rather than 0m.
	b := testAggregator(1)
	b.Observe(0, Outcome{Engine: "gsb", Brand: "PayPal", Technique: "A"})
	if tb := b.Results(1, ProviderFree).RenderTable(); !strings.Contains(tb, "-") {
		t.Errorf("unlisted cell should render '-' lags:\n%s", tb)
	}
}
