// Package campaign plans and aggregates paper-scale phishing studies: the
// same lifecycle the 105-URL main experiment measures (deploy, report,
// crawl, listing, feed sharing), run over 100k-1M URLs in one world. Two
// properties make that tractable where the classic stage is not:
//
//   - Planning is positional. Every URL's assignment — label, provider
//     apex, brand, evasion technique, reporting engine, deploy jitter — is
//     a pure function of (seed, list position) folded through the repo's
//     splitmix64 helpers, and the label itself spells the position in
//     dropcatch's collision-free consonant-vowel encoding. No dedup table,
//     no retained plan slice: wave N's URLs are re-derivable from their
//     indexes alone.
//
//   - Aggregation is streaming. Nothing per-URL survives a URL's
//     measurement window. When a window closes, the outcome folds into a
//     fixed-size cell — one per (engine, brand, technique) — holding
//     counters, a capped-centroid lag sketch, and a bounded ring of
//     exemplar URLs. Memory is O(cells), not O(URLs), which is what the
//     heap-regression test pins down.
//
// The package is seed-pure (policed by the seedpure phishlint analyzer):
// no math/rand, draws derive from chaos.SplitSeed so two worlds with the
// same seed plan identical campaigns regardless of scheduler parallelism.
package campaign

import (
	"errors"
	"fmt"
	"time"

	"areyouhuman/internal/chaos"
	"areyouhuman/internal/dropcatch"
	"areyouhuman/internal/engines"
	"areyouhuman/internal/evasion"
	"areyouhuman/internal/phishkit"
)

// Provider models selectable with Config.Provider.
const (
	// ProviderFree hosts every URL as a subdomain of a shared free-hosting
	// apex (see hosting.FreeProvider): O(1) per-URL deployment, shared-IP
	// reputation, provider abuse sweeps.
	ProviderFree = "free"
	// ProviderDedicated gives every URL its own registrable domain, like
	// the paper's keyword-domain deployments, registered and torn down per
	// window.
	ProviderDedicated = "dedicated"
)

// Providers lists the valid Config.Provider values.
func Providers() []string { return []string{ProviderFree, ProviderDedicated} }

// ErrProvider reports an unknown Config.Provider value.
var ErrProvider = errors.New("campaign: unknown provider")

// ErrSize reports a non-positive Config.URLs.
var ErrSize = errors.New("campaign: URL count must be positive")

// Campaign cadence defaults.
const (
	// DefaultWave is how many URLs deploy per wave. One wave is the
	// campaign's in-flight set: its routes, evasion wrappers, and blacklist
	// entries all release when its windows close, so Wave — not URLs —
	// bounds steady-state memory.
	DefaultWave = 4096
	// DefaultWindow is each URL's measurement window: long enough to cover
	// the slowest engine chain (28m response + 4h blacklist delay + jitter
	// + 90m share delay), after which the URL is scored and purged.
	DefaultWindow = 8 * time.Hour
	// DefaultWatches is how many exemplar URLs get real monitor watches —
	// a sighting-pipeline sanity sample, not per-URL instrumentation.
	DefaultWatches = 16
)

// Config sizes a campaign.
type Config struct {
	// URLs is the campaign size (the paper-scale target is 100k-1M).
	URLs int
	// Provider selects the hosting model: ProviderFree (default) or
	// ProviderDedicated.
	Provider string
	// Wave is the per-wave deploy count (DefaultWave when 0). Waves are
	// spaced one Window apart, so at most one wave is in flight.
	Wave int
	// Window is the per-URL measurement window (DefaultWindow when 0).
	Window time.Duration
	// SweepInterval overrides the free providers' abuse-sweep cadence
	// (hosting.DefaultSweepInterval when 0).
	SweepInterval time.Duration
	// Watches is how many exemplar URLs get monitor watches
	// (DefaultWatches when 0, negative disables).
	Watches int
	// MeasureHeap samples the runtime heap at each wave boundary (forcing
	// a GC first) and reports the high-water mark. Off by default: the
	// forced GCs cost wall time and perturb nothing else.
	MeasureHeap bool
}

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	if c.Provider == "" {
		c.Provider = ProviderFree
	}
	if c.Wave <= 0 {
		c.Wave = DefaultWave
	}
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.Watches == 0 {
		c.Watches = DefaultWatches
	}
	return c
}

// Validate reports whether the (defaulted) config is runnable.
func (c Config) Validate() error {
	if c.URLs <= 0 {
		return fmt.Errorf("%w (got %d)", ErrSize, c.URLs)
	}
	if c.Provider != ProviderFree && c.Provider != ProviderDedicated {
		return fmt.Errorf("%w %q (want %q or %q)", ErrProvider, c.Provider, ProviderFree, ProviderDedicated)
	}
	return nil
}

// Waves is the number of deploy waves the config implies.
func (c Config) Waves() int {
	if c.Wave <= 0 || c.URLs <= 0 {
		return 0
	}
	return (c.URLs + c.Wave - 1) / c.Wave
}

// Plan is one URL's complete assignment, derived from its list position.
type Plan struct {
	Index     int
	Label     string // collision-free subdomain label / domain head
	Apex      string // provider apex ("" under ProviderDedicated)
	Host      string
	URL       string
	Engine    string // engine key the URL is reported to
	Brand     phishkit.Brand
	Technique evasion.Technique
	// Jitter staggers the URL's deploy inside its wave, mimicking the
	// paper's spread submissions.
	Jitter time.Duration
}

// Planner derives per-URL plans. The zero value is not useful; construct
// with NewPlanner and override fields before first use if needed.
type Planner struct {
	Seed int64
	// Apexes are the free-hosting apexes URLs rotate across; empty means
	// ProviderDedicated (each URL gets Label + "." + DedicatedTLD).
	Apexes     []string
	Engines    []string
	Brands     []phishkit.Brand
	Techniques []evasion.Technique
	// Spread is the deploy-jitter range within a wave.
	Spread time.Duration
}

// DedicatedTLD is the synthetic TLD dedicated campaign domains register
// under. Labels are unique per position, so <label>.example never collides
// with the classic stages' keyword domains.
const DedicatedTLD = "example"

// DefaultSpread is the default intra-wave deploy jitter range.
const DefaultSpread = 30 * time.Minute

// NewPlanner builds a planner over the repo's canonical dimensions: all
// seven engines in Table 1 order, the three kit brands, the three human-
// verification techniques.
func NewPlanner(seed int64, apexes []string) *Planner {
	return &Planner{
		Seed:       seed,
		Apexes:     apexes,
		Engines:    engines.Keys(),
		Brands:     phishkit.Brands(),
		Techniques: evasion.Techniques(),
		Spread:     DefaultSpread,
	}
}

// At derives position i's plan. Pure: At(i) is the same on every call, in
// every process, for a fixed planner.
func (pl *Planner) At(i int) Plan {
	// k = i+1: SplitSeed(master, 0) returns master verbatim, and position 0
	// must not expose the raw seed as its draw stream.
	s := uint64(chaos.SplitSeed(pl.Seed, i+1))
	// The label head is a second independent stream so cosmetic name
	// variation doesn't correlate with the assignment fields drawn from s.
	hd := uint64(chaos.SplitSeed(int64(s), 1))

	buf := make([]byte, 0, 24)
	buf = dropcatch.AppendPositionWord(buf, int(hd%9025)) // two CV pairs
	buf = append(buf, '-')
	buf = dropcatch.AppendPositionWord(buf, i)
	label := string(buf)

	p := Plan{Index: i, Label: label}
	h := s
	draw := func(n int) int {
		d := int(h % uint64(n))
		h /= uint64(n)
		return d
	}
	p.Engine = pl.Engines[draw(len(pl.Engines))]
	p.Brand = pl.Brands[draw(len(pl.Brands))]
	p.Technique = pl.Techniques[draw(len(pl.Techniques))]
	if len(pl.Apexes) > 0 {
		p.Apex = pl.Apexes[draw(len(pl.Apexes))]
		p.Host = label + "." + p.Apex
	} else {
		p.Host = label + "." + DedicatedTLD
	}
	if pl.Spread > 0 {
		p.Jitter = time.Duration(draw(int(pl.Spread/time.Second))) * time.Second
	}
	p.URL = "https://" + p.Host + PhishPath
	return p
}

// PhishPath is the path every campaign URL serves its page at. A fixed path
// keeps the provider render caches warm across URLs (the benign cover page
// renders purely from the path).
const PhishPath = "/account/verify"
