package campaign

import (
	"testing"
	"time"
)

func TestLagSketchExact(t *testing.T) {
	// Below the centroid cap nothing merges, so quantiles are exact order
	// statistics of the inserted values.
	var s LagSketch
	for i := 10; i >= 1; i-- { // insertion order must not matter
		s.Add(time.Duration(i) * time.Minute)
	}
	if s.Count() != 10 {
		t.Fatalf("Count = %d, want 10", s.Count())
	}
	if got := s.Quantile(0.5); got != 5*time.Minute {
		t.Errorf("p50 = %v, want 5m", got)
	}
	if got := s.Quantile(0.9); got != 9*time.Minute {
		t.Errorf("p90 = %v, want 9m", got)
	}
	if got := s.Quantile(1); got != 10*time.Minute {
		t.Errorf("p100 = %v, want 10m", got)
	}
	// Out-of-range q clamps rather than panicking.
	if got := s.Quantile(-3); got != 1*time.Minute {
		t.Errorf("Quantile(-3) = %v, want 1m", got)
	}
	if got := s.Quantile(7); got != 10*time.Minute {
		t.Errorf("Quantile(7) = %v, want 10m", got)
	}
}

func TestLagSketchEmpty(t *testing.T) {
	var s LagSketch
	if s.Quantile(0.5) != 0 || s.Count() != 0 {
		t.Error("empty sketch should report zero")
	}
}

func TestLagSketchCompressionCap(t *testing.T) {
	var s LagSketch
	for i := 0; i < 10_000; i++ {
		s.Add(time.Duration(i) * time.Second)
	}
	if len(s.cs) > SketchCentroids {
		t.Fatalf("sketch holds %d centroids, cap is %d", len(s.cs), SketchCentroids)
	}
	if s.Count() != 10_000 {
		t.Fatalf("Count = %d, want 10000", s.Count())
	}
	// Compression trades exactness for bounded size; on a uniform ramp the
	// p50 must still land near the middle.
	p50 := s.Quantile(0.5)
	if p50 < 4000*time.Second || p50 > 6000*time.Second {
		t.Errorf("compressed p50 = %v, want near 5000s", p50)
	}
	// Centroids stay sorted through compression.
	for i := 1; i < len(s.cs); i++ {
		if s.cs[i-1].mean > s.cs[i].mean {
			t.Fatalf("centroids out of order at %d: %v > %v", i, s.cs[i-1].mean, s.cs[i].mean)
		}
	}
}

func TestLagSketchDeterministic(t *testing.T) {
	build := func() *LagSketch {
		var s LagSketch
		for i := 0; i < 5000; i++ {
			// A fixed mixed sequence (no randomness): two interleaved ramps.
			s.Add(time.Duration((i*7919)%3600) * time.Second)
		}
		return &s
	}
	a, b := build(), build()
	if len(a.cs) != len(b.cs) || a.n != b.n {
		t.Fatalf("sketch shapes differ: %d/%d centroids, %d/%d count", len(a.cs), len(b.cs), a.n, b.n)
	}
	for i := range a.cs {
		if a.cs[i] != b.cs[i] {
			t.Fatalf("centroid %d differs: %+v vs %+v", i, a.cs[i], b.cs[i])
		}
	}
}

func TestLagSketchMergeOrderFixed(t *testing.T) {
	// The aggregator merges per-shard sketches in shard order 0..N-1; the
	// guarantee it relies on is that the same merge sequence always produces
	// the same sketch, bit for bit.
	shard := func(k int) *LagSketch {
		var s LagSketch
		for i := 0; i < 900; i++ {
			s.Add(time.Duration((i*31+k*1009)%7200) * time.Second)
		}
		return &s
	}
	merge := func() *LagSketch {
		var m LagSketch
		for k := 0; k < 4; k++ {
			m.Merge(shard(k))
		}
		return &m
	}
	a, b := merge(), merge()
	if a.n != b.n || len(a.cs) != len(b.cs) {
		t.Fatalf("merged shapes differ")
	}
	for i := range a.cs {
		if a.cs[i] != b.cs[i] {
			t.Fatalf("merged centroid %d differs: %+v vs %+v", i, a.cs[i], b.cs[i])
		}
	}
	if got := a.Count(); got != 4*900 {
		t.Errorf("merged count = %d, want %d", got, 4*900)
	}
	// Merging a nil sketch is a no-op.
	n := a.n
	a.Merge(nil)
	if a.n != n {
		t.Error("Merge(nil) changed the sketch")
	}
}

func TestLagSketchEqualValuesCoalesce(t *testing.T) {
	var s LagSketch
	for i := 0; i < 1000; i++ {
		s.Add(42 * time.Second)
	}
	if len(s.cs) != 1 {
		t.Fatalf("1000 equal values produced %d centroids, want 1", len(s.cs))
	}
	if got := s.Quantile(0.9); got != 42*time.Second {
		t.Errorf("p90 = %v, want 42s", got)
	}
}
