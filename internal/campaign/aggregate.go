package campaign

import (
	"fmt"
	"strings"
	"time"
)

// ExemplarCap bounds the exemplar URL ring each cell keeps: enough to spot-
// check a cell's URLs by hand (or hand to the monitor), small enough that
// exemplar storage is O(cells), not O(URLs).
const ExemplarCap = 4

// Outcome is one URL's scored lifecycle, delivered when its measurement
// window closes. It is consumed by value and nothing in it is retained
// except what folds into the cell (counters, one lag sample, maybe an
// exemplar slot).
type Outcome struct {
	Engine    string
	Brand     string
	Technique string // technique letter (A/S/R)
	URL       string
	// Listed: the reported engine's own pipeline listed the URL inside the
	// window (feed shares don't count, as in Table 2).
	Listed bool
	// Taint: the listing came from shared-IP reputation (the engine never
	// got a phish verdict from content; co-hosted listings tipped it).
	Taint bool
	// Shared is how many *other* engines list the URL via feed sharing.
	Shared int
	// Lag is report-to-listing delay (meaningful only when Listed).
	Lag time.Duration
}

// cell is the fixed-size accumulator for one (engine, brand, technique)
// combination on one shard.
type cell struct {
	deployed int
	listed   int
	taint    int
	shared   int
	lags     LagSketch
	ring     [ExemplarCap]string
	rn       int
}

func (c *cell) observe(o Outcome) {
	c.deployed++
	c.shared += o.Shared
	if !o.Listed {
		return
	}
	c.listed++
	if o.Taint {
		c.taint++
	}
	c.lags.Add(o.Lag)
	c.ring[c.rn%ExemplarCap] = o.URL
	c.rn++
}

// exemplars returns the ring's contents oldest-first.
func (c *cell) exemplars() []string {
	n := c.rn
	if n > ExemplarCap {
		n = ExemplarCap
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, c.ring[(c.rn-n+i)%ExemplarCap])
	}
	return out
}

// Aggregator folds streamed Outcomes into per-shard cell grids. Each shard
// writes only its own grid — window-close events run on the URL's home
// shard, so no two workers touch the same cell and no locking is needed —
// and Results merges the grids in shard order 0..N-1, making the rendered
// tables a pure function of virtual time.
type Aggregator struct {
	engines    []string
	brands     []string
	techniques []string
	eIdx       map[string]int
	bIdx       map[string]int
	tIdx       map[string]int
	shards     [][]cell // [shard][e*nb*nt + b*nt + t]
}

// NewAggregator builds an aggregator over fixed dimension orders (the
// orders also fix table row order).
func NewAggregator(shards int, engines, brands, techniques []string) *Aggregator {
	if shards < 1 {
		shards = 1
	}
	a := &Aggregator{
		engines:    append([]string(nil), engines...),
		brands:     append([]string(nil), brands...),
		techniques: append([]string(nil), techniques...),
		eIdx:       make(map[string]int, len(engines)),
		bIdx:       make(map[string]int, len(brands)),
		tIdx:       make(map[string]int, len(techniques)),
		shards:     make([][]cell, shards),
	}
	for i, e := range a.engines {
		a.eIdx[e] = i
	}
	for i, b := range a.brands {
		a.bIdx[b] = i
	}
	for i, t := range a.techniques {
		a.tIdx[t] = i
	}
	size := len(engines) * len(brands) * len(techniques)
	for i := range a.shards {
		a.shards[i] = make([]cell, size)
	}
	return a
}

// Observe folds o into shard's grid. Callers must deliver each shard's
// outcomes from that shard's own events (or from a single goroutine).
func (a *Aggregator) Observe(shard int, o Outcome) {
	if shard < 0 || shard >= len(a.shards) {
		shard = 0
	}
	e, ok := a.eIdx[o.Engine]
	if !ok {
		return
	}
	b, ok := a.bIdx[o.Brand]
	if !ok {
		return
	}
	t, ok := a.tIdx[o.Technique]
	if !ok {
		return
	}
	a.shards[shard][(e*len(a.brands)+b)*len(a.techniques)+t].observe(o)
}

// CellResult is one merged (engine, brand, technique) row.
type CellResult struct {
	Engine    string
	Brand     string
	Technique string
	Deployed  int
	Listed    int
	Taint     int // listings owed to shared-IP reputation
	Shared    int // cross-engine feed-share listings
	P50       time.Duration
	P90       time.Duration
	Exemplars []string
}

// EngineResult totals one engine across brands and techniques.
type EngineResult struct {
	Engine   string
	Deployed int
	Listed   int
	Taint    int
	Shared   int
	P50      time.Duration
	P90      time.Duration
}

// ProviderReport snapshots one hosting provider's campaign-relevant
// counters (mirrors hosting.ProviderStats without importing it — campaign
// sits below the hosting layer).
type ProviderReport struct {
	Apex      string
	Mounted   int64
	Evicted   int64
	Sweeps    int64
	Takedowns int64
}

// Results is a campaign's complete output. Everything except the wall-clock
// fields is deterministic for a fixed seed and identical across scheduler
// worker counts.
type Results struct {
	URLs     int
	Provider string
	Cells    []CellResult // dimension order, rows with Deployed > 0
	Engines  []EngineResult
	Deployed int
	Listed   int
	Taint    int
	Shared   int
	// Providers is filled by the free-hosting runner (empty for dedicated).
	Providers []ProviderReport
	// Watched/Sighted: how many exemplar URLs carried real monitor watches,
	// and how many of those the monitoring pipeline sighted in time.
	Watched int
	Sighted int
	// VirtualDuration is how much simulated time the campaign spanned.
	VirtualDuration time.Duration
	// PeakHeapBytes is the wave-boundary heap high-water mark (0 unless
	// Config.MeasureHeap). Wall-clock figures, excluded from RenderTable.
	PeakHeapBytes uint64
	WallSeconds   float64
	URLsPerSec    float64
}

// Results merges the shard grids (in shard order) and assembles the final
// tables.
func (a *Aggregator) Results(urls int, provider string) *Results {
	res := &Results{URLs: urls, Provider: provider}
	nb, nt := len(a.brands), len(a.techniques)
	for e, eng := range a.engines {
		et := EngineResult{Engine: eng}
		var elags LagSketch
		for b := 0; b < nb; b++ {
			for t := 0; t < nt; t++ {
				var m cell
				var lags LagSketch
				var ex []string
				for shard := range a.shards {
					c := &a.shards[shard][(e*nb+b)*nt+t]
					m.deployed += c.deployed
					m.listed += c.listed
					m.taint += c.taint
					m.shared += c.shared
					lags.Merge(&c.lags)
					for _, u := range c.exemplars() {
						if len(ex) < ExemplarCap {
							ex = append(ex, u)
						}
					}
				}
				if m.deployed == 0 {
					continue
				}
				res.Cells = append(res.Cells, CellResult{
					Engine: eng, Brand: a.brands[b], Technique: a.techniques[t],
					Deployed: m.deployed, Listed: m.listed, Taint: m.taint,
					Shared: m.shared,
					P50:    lags.Quantile(0.5), P90: lags.Quantile(0.9),
					Exemplars: ex,
				})
				et.Deployed += m.deployed
				et.Listed += m.listed
				et.Taint += m.taint
				et.Shared += m.shared
				elags.Merge(&lags)
			}
		}
		if et.Deployed == 0 {
			continue
		}
		et.P50 = elags.Quantile(0.5)
		et.P90 = elags.Quantile(0.9)
		res.Engines = append(res.Engines, et)
		res.Deployed += et.Deployed
		res.Listed += et.Listed
		res.Taint += et.Taint
		res.Shared += et.Shared
	}
	return res
}

// RenderTable formats the deterministic portion of the results: the cell
// grid, engine totals, and provider counters. Wall-clock fields (rate, heap)
// are deliberately absent so the rendering can be byte-compared across
// worker counts and machines.
func (r *Results) RenderTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign: %d URLs, provider=%s, virtual span %.0fh\n",
		r.URLs, r.Provider, r.VirtualDuration.Hours())
	fmt.Fprintf(&b, "%-14s %-10s %-4s %9s %8s %8s %8s %8s %8s\n",
		"engine", "brand", "tech", "deployed", "listed", "ip-rep", "shared", "p50", "p90")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-14s %-10s %-4s %9d %8d %8d %8d %8s %8s\n",
			c.Engine, c.Brand, c.Technique,
			c.Deployed, c.Listed, c.Taint, c.Shared, mins(c.P50), mins(c.P90))
	}
	fmt.Fprintf(&b, "%-30s %9s %8s %8s %8s %8s %8s\n", "engine totals",
		"deployed", "listed", "ip-rep", "shared", "p50", "p90")
	for _, e := range r.Engines {
		fmt.Fprintf(&b, "%-30s %9d %8d %8d %8d %8s %8s\n",
			e.Engine, e.Deployed, e.Listed, e.Taint, e.Shared, mins(e.P50), mins(e.P90))
	}
	fmt.Fprintf(&b, "total: deployed=%d listed=%d ip-rep=%d shared=%d\n",
		r.Deployed, r.Listed, r.Taint, r.Shared)
	if r.Watched > 0 {
		fmt.Fprintf(&b, "monitor: sighted %d of %d watched exemplars\n", r.Sighted, r.Watched)
	}
	for _, p := range r.Providers {
		fmt.Fprintf(&b, "provider %s: mounted=%d evicted=%d sweeps=%d takedowns=%d\n",
			p.Apex, p.Mounted, p.Evicted, p.Sweeps, p.Takedowns)
	}
	return b.String()
}

// mins renders a duration as whole minutes, or "-" for zero (no listings).
func mins(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0fm", d.Minutes())
}
