package campaign

import (
	"sort"
	"time"
)

// SketchCentroids caps a LagSketch's size. 64 centroids resolve the p50/p90
// of a listing-lag distribution (a few modes a few minutes to hours wide)
// to well under the one-minute granularity the tables print.
const SketchCentroids = 64

// LagSketch is a deterministic capped-centroid quantile sketch over
// durations — the t-digest idea stripped to what byte-identical replay
// needs. Values insert as unit-weight centroids in sorted order; past the
// cap, the adjacent pair with the smallest combined weight merges (ties to
// the smallest index). Every operation is a pure function of the insertion
// sequence — no randomness, no scale functions with platform-dependent
// rounding — so per-shard sketches built in event order and merged in shard
// order render identically for every worker count.
//
// The zero value is an empty sketch ready for use.
type LagSketch struct {
	cs []centroid
	n  int64
}

type centroid struct {
	mean float64
	w    int64
}

// Add folds one observation in.
func (s *LagSketch) Add(d time.Duration) { s.add(float64(d), 1) }

// Count is the number of observations folded in.
func (s *LagSketch) Count() int64 { return s.n }

func (s *LagSketch) add(v float64, w int64) {
	if w <= 0 {
		return
	}
	i := sort.Search(len(s.cs), func(j int) bool { return s.cs[j].mean >= v })
	if i < len(s.cs) && s.cs[i].mean == v {
		s.cs[i].w += w
	} else {
		s.cs = append(s.cs, centroid{})
		copy(s.cs[i+1:], s.cs[i:])
		s.cs[i] = centroid{mean: v, w: w}
	}
	s.n += w
	if len(s.cs) > SketchCentroids {
		s.compress()
	}
}

// compress merges the adjacent centroid pair with the smallest combined
// weight; ties break to the smallest index. The merged mean is computed in
// separate statements so the compiler cannot fuse the arithmetic into an
// FMA, which would make the float bits platform-dependent.
func (s *LagSketch) compress() {
	best := 0
	bw := s.cs[0].w + s.cs[1].w
	for i := 1; i+1 < len(s.cs); i++ {
		if w := s.cs[i].w + s.cs[i+1].w; w < bw {
			best, bw = i, w
		}
	}
	a, b := s.cs[best], s.cs[best+1]
	wa := a.mean * float64(a.w)
	wb := b.mean * float64(b.w)
	sum := wa + wb
	s.cs[best] = centroid{mean: sum / float64(bw), w: bw}
	s.cs = append(s.cs[:best+1], s.cs[best+2:]...)
}

// Merge folds o's centroids into s, in o's (sorted) order. Merging the same
// sketches in the same order always yields the same result, which is how
// the aggregator gets shard-count-independent tables: per-shard sketches
// merge in shard order 0..N-1.
func (s *LagSketch) Merge(o *LagSketch) {
	if o == nil {
		return
	}
	// o's centroid slice is re-read by index because s.add never mutates o
	// (s != o is required, as with most merge APIs).
	for i := range o.cs {
		s.add(o.cs[i].mean, o.cs[i].w)
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) as a duration: the mean of
// the centroid holding the q*n-th observation. Empty sketches report 0.
func (s *LagSketch) Quantile(q float64) time.Duration {
	if s.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.n)
	cum := int64(0)
	for i := range s.cs {
		cum += s.cs[i].w
		if float64(cum) >= target {
			return time.Duration(s.cs[i].mean)
		}
	}
	return time.Duration(s.cs[len(s.cs)-1].mean)
}
