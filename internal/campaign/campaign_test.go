package campaign

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestConfigWithDefaults(t *testing.T) {
	c := Config{URLs: 100}.WithDefaults()
	if c.Provider != ProviderFree {
		t.Errorf("default provider = %q, want %q", c.Provider, ProviderFree)
	}
	if c.Wave != DefaultWave || c.Window != DefaultWindow || c.Watches != DefaultWatches {
		t.Errorf("defaults not applied: %+v", c)
	}
	// Negative Watches means "disabled" and must survive defaulting.
	if got := (Config{URLs: 1, Watches: -1}).WithDefaults().Watches; got != -1 {
		t.Errorf("Watches=-1 defaulted to %d, want -1 preserved", got)
	}
	// Explicit values pass through.
	c = Config{URLs: 1, Provider: ProviderDedicated, Wave: 7, Window: time.Hour, Watches: 3}.WithDefaults()
	if c.Provider != ProviderDedicated || c.Wave != 7 || c.Window != time.Hour || c.Watches != 3 {
		t.Errorf("explicit config mangled: %+v", c)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{URLs: 0, Provider: ProviderFree}).Validate(); !errors.Is(err, ErrSize) {
		t.Errorf("URLs=0 error = %v, want ErrSize", err)
	}
	if err := (Config{URLs: -5, Provider: ProviderFree}).Validate(); !errors.Is(err, ErrSize) {
		t.Errorf("URLs=-5 error = %v, want ErrSize", err)
	}
	if err := (Config{URLs: 10, Provider: "clown"}).Validate(); !errors.Is(err, ErrProvider) {
		t.Errorf("bad provider error = %v, want ErrProvider", err)
	}
	for _, p := range Providers() {
		if err := (Config{URLs: 10, Provider: p}).Validate(); err != nil {
			t.Errorf("Validate(%q) = %v, want nil", p, err)
		}
	}
}

func TestConfigWaves(t *testing.T) {
	cases := []struct{ urls, wave, want int }{
		{100, 100, 1},
		{101, 100, 2},
		{100_000, 4096, 25},
		{1, 4096, 1},
		{0, 4096, 0},
		{10, 0, 0},
	}
	for _, c := range cases {
		if got := (Config{URLs: c.urls, Wave: c.wave}).Waves(); got != c.want {
			t.Errorf("Waves(urls=%d, wave=%d) = %d, want %d", c.urls, c.wave, got, c.want)
		}
	}
}

func TestPlannerDeterministic(t *testing.T) {
	apexes := []string{"a.example", "b.example"}
	p1 := NewPlanner(42, apexes)
	p2 := NewPlanner(42, apexes)
	for i := 0; i < 500; i++ {
		if a, b := p1.At(i), p2.At(i); a != b {
			t.Fatalf("At(%d) differs across planners with same seed:\n%+v\n%+v", i, a, b)
		}
	}
	// A different seed reassigns fields (labels keep their positional tail).
	p3 := NewPlanner(43, apexes)
	same := 0
	for i := 0; i < 500; i++ {
		if p1.At(i).Engine == p3.At(i).Engine {
			same++
		}
	}
	if same == 500 {
		t.Error("seed change left every engine assignment identical")
	}
}

func TestPlannerLabelsCollisionFree(t *testing.T) {
	// The positional word in the label tail guarantees uniqueness regardless
	// of the seed-derived head; check a real prefix of campaign positions.
	pl := NewPlanner(7, []string{"x.example"})
	seen := make(map[string]bool, 5000)
	for i := 0; i < 5000; i++ {
		p := pl.At(i)
		if seen[p.Label] {
			t.Fatalf("duplicate label %q at position %d", p.Label, i)
		}
		seen[p.Label] = true
		if seen[p.Host] {
			t.Fatalf("duplicate host %q at position %d", p.Host, i)
		}
	}
}

func TestPlannerFieldsInRange(t *testing.T) {
	apexes := []string{"a.example", "b.example", "c.example"}
	pl := NewPlanner(1, apexes)
	engineSet := make(map[string]bool)
	for _, e := range pl.Engines {
		engineSet[e] = true
	}
	apexSet := make(map[string]bool)
	for _, a := range apexes {
		apexSet[a] = true
	}
	for i := 0; i < 2000; i++ {
		p := pl.At(i)
		if p.Index != i {
			t.Fatalf("At(%d).Index = %d", i, p.Index)
		}
		if !engineSet[p.Engine] {
			t.Fatalf("At(%d) engine %q not in planner set", i, p.Engine)
		}
		if !apexSet[p.Apex] {
			t.Fatalf("At(%d) apex %q not in planner set", i, p.Apex)
		}
		if want := p.Label + "." + p.Apex; p.Host != want {
			t.Fatalf("At(%d) host %q, want %q", i, p.Host, want)
		}
		if want := "https://" + p.Host + PhishPath; p.URL != want {
			t.Fatalf("At(%d) URL %q, want %q", i, p.URL, want)
		}
		if p.Jitter < 0 || p.Jitter >= pl.Spread {
			t.Fatalf("At(%d) jitter %v outside [0, %v)", i, p.Jitter, pl.Spread)
		}
	}
}

func TestPlannerDedicated(t *testing.T) {
	pl := NewPlanner(9, nil)
	for i := 0; i < 100; i++ {
		p := pl.At(i)
		if p.Apex != "" {
			t.Fatalf("dedicated plan has apex %q", p.Apex)
		}
		if want := p.Label + "." + DedicatedTLD; p.Host != want {
			t.Fatalf("dedicated host %q, want %q", p.Host, want)
		}
		if !strings.HasPrefix(p.URL, "https://") {
			t.Fatalf("URL %q not https", p.URL)
		}
	}
}

func TestPlannerDimensionCoverage(t *testing.T) {
	// Over a campaign-sized prefix every engine, brand, and technique must
	// actually be exercised — a biased draw chain would silently skew tables.
	pl := NewPlanner(3, []string{"a.example"})
	engines := make(map[string]int)
	brands := make(map[string]int)
	techs := make(map[string]int)
	for i := 0; i < 3000; i++ {
		p := pl.At(i)
		engines[p.Engine]++
		brands[string(p.Brand)]++
		techs[p.Technique.Letter()]++
	}
	if len(engines) != len(pl.Engines) {
		t.Errorf("only %d of %d engines drawn", len(engines), len(pl.Engines))
	}
	if len(brands) != len(pl.Brands) {
		t.Errorf("only %d of %d brands drawn", len(brands), len(pl.Brands))
	}
	if len(techs) != len(pl.Techniques) {
		t.Errorf("only %d of %d techniques drawn", len(techs), len(pl.Techniques))
	}
	for e, n := range engines {
		if n < 3000/len(pl.Engines)/4 {
			t.Errorf("engine %s drew only %d of 3000 positions (badly skewed)", e, n)
		}
	}
}
