package htmlmini

import (
	"strings"
	"testing"
	"testing/quick"
)

const samplePage = `<!DOCTYPE html>
<html>
<head><title>PayPal - Log In</title><link rel="icon" href="/favicon.ico"></head>
<body>
  <!-- login area -->
  <h1>Welcome</h1>
  <img src="/img/logo.png" alt="logo">
  <form action="/login.php" method="post" id="loginform">
    <input type="email" name="login_email" value="">
    <input type="password" name="login_pass">
    <input type="hidden" name="csrf" value="tok123">
    <textarea name="note">hello</textarea>
    <select name="lang"><option value="en" selected>English</option><option value="fr">French</option></select>
    <button type="submit">Log In</button>
  </form>
  <a href="/help.php">Help</a>
  <a href="https://elsewhere.example/">Away</a>
  <script>
    var x = 1 < 2; // tags inside script must not confuse the tokenizer
    document.title = "<fake>";
  </script>
</body>
</html>`

func TestTokenizeBasics(t *testing.T) {
	t.Parallel()
	toks := Tokenize(`<p class="x">hi</p>`)
	if len(toks) != 3 {
		t.Fatalf("got %d tokens, want 3: %#v", len(toks), toks)
	}
	if toks[0].Type != StartTagToken || toks[0].Data != "p" {
		t.Fatalf("token 0 = %#v", toks[0])
	}
	if v := toks[0].Attrs[0]; v.Key != "class" || v.Val != "x" {
		t.Fatalf("attr = %#v", v)
	}
	if toks[1].Type != TextToken || toks[1].Data != "hi" {
		t.Fatalf("token 1 = %#v", toks[1])
	}
	if toks[2].Type != EndTagToken || toks[2].Data != "p" {
		t.Fatalf("token 2 = %#v", toks[2])
	}
}

func TestTokenizeVoidAndSelfClosing(t *testing.T) {
	t.Parallel()
	toks := Tokenize(`<img src="a.png"><br/><input name=q value=search>`)
	for _, tok := range toks {
		if tok.Type != SelfClosingTagToken {
			t.Fatalf("token %#v should be self-closing", tok)
		}
	}
	if toks[2].Attrs[1].Val != "search" {
		t.Fatalf("unquoted attr value = %#v", toks[2].Attrs)
	}
}

func TestTokenizeScriptRawText(t *testing.T) {
	t.Parallel()
	toks := Tokenize(`<script>if (a<b) { x = "</div>"; }</script>`)
	// Note: a real HTML parser would end the script at the literal "</div"
	// only if it matched "</script"; ours ends at "</script" too.
	if toks[0].Data != "script" {
		t.Fatalf("token 0 = %#v", toks[0])
	}
	if toks[1].Type != TextToken || !strings.Contains(toks[1].Data, "a<b") {
		t.Fatalf("script body = %#v", toks[1])
	}
	if toks[2].Type != EndTagToken || toks[2].Data != "script" {
		t.Fatalf("token 2 = %#v", toks[2])
	}
}

func TestTokenizeComment(t *testing.T) {
	t.Parallel()
	toks := Tokenize(`<!-- secret -->`)
	if len(toks) != 1 || toks[0].Type != CommentToken || toks[0].Data != " secret " {
		t.Fatalf("tokens = %#v", toks)
	}
}

func TestTokenizeStrayLt(t *testing.T) {
	t.Parallel()
	toks := Tokenize(`a < b`)
	var text strings.Builder
	for _, tok := range toks {
		if tok.Type != TextToken {
			t.Fatalf("unexpected token %#v", tok)
		}
		text.WriteString(tok.Data)
	}
	if text.String() != "a < b" {
		t.Fatalf("text = %q", text.String())
	}
}

func TestParseStructure(t *testing.T) {
	t.Parallel()
	doc := Parse(samplePage)
	if doc.Title() != "PayPal - Log In" {
		t.Fatalf("Title = %q", doc.Title())
	}
	if h1 := doc.First("h1"); h1 == nil || strings.TrimSpace(h1.Text()) != "Welcome" {
		t.Fatal("missing h1")
	}
	if el := doc.ByID("loginform"); el == nil || el.Tag != "form" {
		t.Fatal("ByID(loginform) failed")
	}
	if doc.ByID("nothere") != nil {
		t.Fatal("ByID should return nil for a missing id")
	}
}

func TestParseForms(t *testing.T) {
	t.Parallel()
	doc := Parse(samplePage)
	forms := doc.Forms()
	if len(forms) != 1 {
		t.Fatalf("got %d forms, want 1", len(forms))
	}
	f := forms[0]
	if f.Action != "/login.php" || f.Method != "POST" {
		t.Fatalf("form = %+v", f)
	}
	wantFields := map[string]string{
		"login_email": "", "login_pass": "", "csrf": "tok123", "note": "hello", "lang": "en",
	}
	for k, v := range wantFields {
		if got, ok := f.Fields[k]; !ok || got != v {
			t.Fatalf("field %s = %q,%v; want %q", k, got, ok, v)
		}
	}
}

func TestParseLinks(t *testing.T) {
	t.Parallel()
	doc := Parse(samplePage)
	links := doc.Links()
	if len(links) != 2 || links[0] != "/help.php" || links[1] != "https://elsewhere.example/" {
		t.Fatalf("Links = %v", links)
	}
}

func TestParseScripts(t *testing.T) {
	t.Parallel()
	doc := Parse(samplePage)
	scripts := doc.Scripts()
	if len(scripts) != 1 || !strings.Contains(scripts[0], `document.title = "<fake>"`) {
		t.Fatalf("Scripts = %q", scripts)
	}
}

func TestScriptsSkipExternal(t *testing.T) {
	t.Parallel()
	doc := Parse(`<script src="/app.js"></script><script>inline()</script>`)
	scripts := doc.Scripts()
	if len(scripts) != 1 || !strings.Contains(scripts[0], "inline()") {
		t.Fatalf("Scripts = %q, want only the inline one", scripts)
	}
}

func TestTextExcludesScriptAndStyle(t *testing.T) {
	t.Parallel()
	doc := Parse(`<body>visible<script>hidden()</script><style>.x{}</style></body>`)
	text := doc.Text()
	if !strings.Contains(text, "visible") || strings.Contains(text, "hidden") || strings.Contains(text, ".x") {
		t.Fatalf("Text = %q", text)
	}
}

func TestUnbalancedMarkupRepaired(t *testing.T) {
	t.Parallel()
	doc := Parse(`<div><p>one<p>two</div></span><b>after</b>`)
	if doc.First("b") == nil {
		t.Fatal("content after stray close tag must still parse")
	}
}

func TestMutationAppendRemove(t *testing.T) {
	t.Parallel()
	doc := Parse(`<body></body>`)
	body := doc.Body()
	form := NewElement("form")
	form.SetAttr("method", "post")
	input := NewElement("input")
	input.SetAttr("name", "gresponse")
	input.SetAttr("value", "tok")
	form.AppendChild(input)
	body.AppendChild(form)

	forms := doc.Forms()
	if len(forms) != 1 || forms[0].Fields["gresponse"] != "tok" {
		t.Fatalf("after mutation Forms = %+v", forms)
	}
	body.RemoveChild(form)
	if len(doc.Forms()) != 0 {
		t.Fatal("form should be gone after RemoveChild")
	}
	if form.Parent != nil {
		t.Fatal("removed node must be detached")
	}
}

func TestSetAttrReplaces(t *testing.T) {
	t.Parallel()
	el := NewElement("input")
	el.SetAttr("value", "a")
	el.SetAttr("VALUE", "b")
	if got := el.AttrOr("value", ""); got != "b" {
		t.Fatalf("value = %q, want b", got)
	}
	if len(el.Attrs) != 1 {
		t.Fatalf("attrs = %v, want single deduplicated attr", el.Attrs)
	}
}

func TestRenderRoundTrip(t *testing.T) {
	t.Parallel()
	doc := Parse(samplePage)
	rendered := doc.Render()
	doc2 := Parse(rendered)
	if doc2.Title() != doc.Title() {
		t.Fatalf("round-trip title = %q, want %q", doc2.Title(), doc.Title())
	}
	if len(doc2.Forms()) != len(doc.Forms()) {
		t.Fatal("round-trip lost forms")
	}
	if len(doc2.Links()) != len(doc.Links()) {
		t.Fatal("round-trip lost links")
	}
	s1, s2 := doc.Scripts(), doc2.Scripts()
	if len(s1) != len(s2) || s1[0] != s2[0] {
		t.Fatal("round-trip altered script body")
	}
}

func TestEntitiesUnescapedInText(t *testing.T) {
	t.Parallel()
	doc := Parse(`<p>fish &amp; chips &lt;3</p>`)
	if got := strings.TrimSpace(doc.Text()); got != "fish & chips <3" {
		t.Fatalf("Text = %q", got)
	}
}

// Property: Parse never panics and Render→Parse preserves the element count
// for arbitrary input strings.
func TestQuickParseTotal(t *testing.T) {
	t.Parallel()
	count := func(n *Node) int {
		c := 0
		n.Walk(func(x *Node) bool {
			if x.Type == ElementNode {
				c++
			}
			return true
		})
		return c
	}
	f := func(s string) bool {
		doc := Parse(s)
		re := Parse(doc.Render())
		return count(doc) == count(re)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFormWithNoActionOrMethod(t *testing.T) {
	t.Parallel()
	doc := Parse(`<form><input name="u" value="1"></form>`)
	f := doc.Forms()[0]
	if f.Action != "" || f.Method != "GET" {
		t.Fatalf("defaults = action %q method %q; want empty action, GET", f.Action, f.Method)
	}
}

func TestTextSkipsSubtreesWithoutAborting(t *testing.T) {
	t.Parallel()
	// Regression: an excluded subtree (head/script) must not end text
	// extraction for the rest of the document.
	doc := Parse(`<html><head><title>hidden</title></head><body>
<script>alsoHidden()</script><p>first</p><style>.x{}</style><p>second</p></body></html>`)
	text := doc.Text()
	if !strings.Contains(text, "first") || !strings.Contains(text, "second") {
		t.Fatalf("Text truncated: %q", text)
	}
	if strings.Contains(text, "hidden") || strings.Contains(text, "alsoHidden") {
		t.Fatalf("Text leaked non-rendered content: %q", text)
	}
}

func TestTextOnTitleNodeItself(t *testing.T) {
	t.Parallel()
	doc := Parse(`<title>The Title</title>`)
	title := doc.First("title")
	if got := title.Text(); got != "The Title" {
		t.Fatalf("Text on a title node itself = %q", got)
	}
}

func TestRawTextWithInvalidUTF8(t *testing.T) {
	t.Parallel()
	// Regression (found by FuzzParse): case-insensitive raw-text scanning
	// must not fold through strings.ToLower, whose output length differs on
	// invalid UTF-8 and misaligns byte offsets.
	doc := Parse("<sCript>\xc0\xc0\xc0\xc0\xc0")
	if doc.First("script") == nil {
		t.Fatal("script element should parse")
	}
	doc2 := Parse("<SCRIPT>body</ScRiPt><p>after</p>")
	if doc2.First("p") == nil {
		t.Fatal("mixed-case close tag should end the raw-text element")
	}
}
