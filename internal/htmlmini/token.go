// Package htmlmini is a small HTML tokenizer and DOM used by the browser
// emulation substrate.
//
// It is not a full HTML5 parser; it covers the constructs the simulated
// websites and phishing kits emit — nested elements, attributes, void
// elements, comments, doctype, and raw-text elements (script/style) — which
// is what anti-phishing crawlers need to find forms, links, scripts, and
// brand signals on a page.
package htmlmini

import (
	"strings"
	"sync"
	"unicode"
)

// TokenType identifies a lexical token.
type TokenType int

// Token types.
const (
	TextToken TokenType = iota
	StartTagToken
	EndTagToken
	SelfClosingTagToken
	CommentToken
	DoctypeToken
)

// Token is one lexical HTML token.
type Token struct {
	Type  TokenType
	Data  string // tag name, text content, or comment body
	Attrs []Attr // attributes for start/self-closing tags
}

// Attr is one tag attribute.
type Attr struct {
	Key string
	Val string
}

// voidElements never have children or end tags.
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// rawTextElements swallow their content verbatim until the matching end tag.
var rawTextElements = map[string]bool{"script": true, "style": true, "title": true, "textarea": true}

// Tokenizer splits HTML source into tokens, reusing its token buffer across
// calls so steady-state tokenization does not grow the heap. A Tokenizer is
// not safe for concurrent use; Tokenize (the function) draws one from a pool.
type Tokenizer struct {
	tokens []Token
}

// Tokenize splits src into HTML tokens. The returned slice is valid until the
// next Tokenize call on this Tokenizer (its backing array is reused); the
// token Data strings and Attrs remain valid indefinitely.
func (t *Tokenizer) Tokenize(src string) []Token {
	tokens := t.tokens[:0]
	i := 0
	n := len(src)
	for i < n {
		lt := strings.IndexByte(src[i:], '<')
		if lt < 0 {
			if text := src[i:]; text != "" {
				tokens = append(tokens, Token{Type: TextToken, Data: text})
			}
			break
		}
		if lt > 0 {
			tokens = append(tokens, Token{Type: TextToken, Data: src[i : i+lt]})
			i += lt
		}
		// src[i] == '<'
		switch {
		case strings.HasPrefix(src[i:], "<!--"):
			end := strings.Index(src[i+4:], "-->")
			if end < 0 {
				tokens = append(tokens, Token{Type: CommentToken, Data: src[i+4:]})
				i = n
				continue
			}
			tokens = append(tokens, Token{Type: CommentToken, Data: src[i+4 : i+4+end]})
			i += 4 + end + 3
		case strings.HasPrefix(src[i:], "<!"):
			end := strings.IndexByte(src[i:], '>')
			if end < 0 {
				i = n
				continue
			}
			tokens = append(tokens, Token{Type: DoctypeToken, Data: strings.TrimSpace(src[i+2 : i+end])})
			i += end + 1
		case strings.HasPrefix(src[i:], "</"):
			end := strings.IndexByte(src[i:], '>')
			if end < 0 {
				i = n
				continue
			}
			name := strings.ToLower(strings.TrimSpace(src[i+2 : i+end]))
			tokens = append(tokens, Token{Type: EndTagToken, Data: name})
			i += end + 1
		default:
			tok, next, ok := lexTag(src, i)
			if !ok {
				// Stray '<': treat as text.
				tokens = append(tokens, Token{Type: TextToken, Data: "<"})
				i++
				continue
			}
			i = next
			tokens = append(tokens, tok)
			// Raw-text elements: swallow content until the closing tag.
			if tok.Type == StartTagToken && rawTextElements[tok.Data] {
				closer := "</" + tok.Data
				idx := indexFold(src[i:], closer)
				if idx < 0 {
					if content := src[i:]; content != "" {
						tokens = append(tokens, Token{Type: TextToken, Data: content})
					}
					i = n
					continue
				}
				if idx > 0 {
					tokens = append(tokens, Token{Type: TextToken, Data: src[i : i+idx]})
				}
				i += idx
				gtRel := strings.IndexByte(src[i:], '>')
				tokens = append(tokens, Token{Type: EndTagToken, Data: tok.Data})
				if gtRel < 0 {
					i = n
				} else {
					i += gtRel + 1
				}
			}
		}
	}
	t.tokens = tokens
	return tokens
}

var tokenizerPool = sync.Pool{New: func() any { return new(Tokenizer) }}

// Tokenize splits src into HTML tokens using a pooled Tokenizer. The returned
// slice is freshly owned by the caller.
func Tokenize(src string) []Token {
	tk := tokenizerPool.Get().(*Tokenizer)
	scratch := tk.Tokenize(src)
	out := make([]Token, len(scratch))
	copy(out, scratch)
	tokenizerPool.Put(tk)
	return out
}

// indexFold is a case-insensitive strings.Index for ASCII needles. It folds
// byte-wise, so indexes stay valid even when the haystack contains invalid
// UTF-8 (strings.ToLower would change byte offsets there).
func indexFold(haystack, needle string) int {
	if len(needle) == 0 {
		return 0
	}
	for i := 0; i+len(needle) <= len(haystack); i++ {
		match := true
		for j := 0; j < len(needle); j++ {
			if asciiLower(haystack[i+j]) != asciiLower(needle[j]) {
				match = false
				break
			}
		}
		if match {
			return i
		}
	}
	return -1
}

func asciiLower(b byte) byte {
	if b >= 'A' && b <= 'Z' {
		return b + 'a' - 'A'
	}
	return b
}

// lexTag parses a start tag beginning at src[i] == '<'. It returns the token
// and the index just past '>'.
func lexTag(src string, i int) (Token, int, bool) {
	j := i + 1
	n := len(src)
	start := j
	for j < n && (isAlnum(src[j]) || src[j] == '-' || src[j] == ':') {
		j++
	}
	if j == start {
		return Token{}, i, false
	}
	tok := Token{Type: StartTagToken, Data: strings.ToLower(src[start:j])}
	for j < n {
		// Skip whitespace.
		for j < n && unicode.IsSpace(rune(src[j])) {
			j++
		}
		if j >= n {
			return tok, n, true
		}
		if src[j] == '>' {
			j++
			break
		}
		if src[j] == '/' {
			if j+1 < n && src[j+1] == '>' {
				tok.Type = SelfClosingTagToken
				j += 2
				return tok, j, true
			}
			j++
			continue
		}
		// Attribute name.
		aStart := j
		for j < n && src[j] != '=' && src[j] != '>' && src[j] != '/' && !unicode.IsSpace(rune(src[j])) {
			j++
		}
		key := strings.ToLower(src[aStart:j])
		val := ""
		for j < n && unicode.IsSpace(rune(src[j])) {
			j++
		}
		if j < n && src[j] == '=' {
			j++
			for j < n && unicode.IsSpace(rune(src[j])) {
				j++
			}
			if j < n && (src[j] == '"' || src[j] == '\'') {
				quote := src[j]
				j++
				vStart := j
				for j < n && src[j] != quote {
					j++
				}
				val = src[vStart:j]
				if j < n {
					j++ // closing quote
				}
			} else {
				vStart := j
				for j < n && src[j] != '>' && !unicode.IsSpace(rune(src[j])) {
					j++
				}
				val = src[vStart:j]
			}
		}
		if key != "" {
			tok.Attrs = append(tok.Attrs, Attr{Key: key, Val: val})
		}
	}
	if voidElements[tok.Data] && tok.Type == StartTagToken {
		tok.Type = SelfClosingTagToken
	}
	return tok, j, true
}

func isAlnum(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9'
}
