package htmlmini

import "testing"

// TestParseCacheAllocs is the allocation-regression gate for the cached parse
// path: a cache hit must skip tokenization entirely and pay only for the
// deep clone it hands out, which is a fixed small multiple of the node count
// — far below what a full Parse costs.
func TestParseCacheAllocs(t *testing.T) {
	src := samplePage
	cache := NewParseCache()
	cache.Get(src) // warm the entry

	hit := testing.AllocsPerRun(100, func() { cache.Get(src) })
	miss := testing.AllocsPerRun(100, func() { Parse(src) })
	if hit >= miss {
		t.Errorf("cached Get allocates %.1f times, full Parse %.1f; the cache should be cheaper", hit, miss)
	}
	// The clone is one arena plus one Attrs and one Children slice per node
	// that has them; pin a generous ceiling so regressions (e.g. the arena
	// reverting to append-grown nodes) fail loudly.
	walkCount := 0
	cache.Get(src).Walk(func(*Node) bool { walkCount++; return true })
	ceiling := float64(2*walkCount + 4)
	if hit > ceiling {
		t.Errorf("cached Get allocates %.1f times for %d nodes, want <= %.0f", hit, walkCount, ceiling)
	}

	hits, misses := cache.Stats()
	if hits == 0 || misses != 1 {
		t.Errorf("cache stats = %d hits / %d misses, want many hits and exactly 1 miss", hits, misses)
	}
}
