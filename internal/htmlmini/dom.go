package htmlmini

import (
	"fmt"
	"html"
	"strings"
)

// NodeType identifies a DOM node kind.
type NodeType int

// Node types.
const (
	ElementNode NodeType = iota
	TextNode
	CommentNode
	DocumentNode
)

// Node is a DOM node. Element nodes have a Tag and Attrs; text and comment
// nodes carry Data.
type Node struct {
	Type     NodeType
	Tag      string
	Data     string
	Attrs    []Attr
	Parent   *Node
	Children []*Node
}

// Parse builds a DOM tree from src. It always succeeds, repairing unbalanced
// markup the way browsers do (unexpected end tags are ignored; unclosed
// elements close at their ancestor's end).
//
// Nodes are allocated out of a single preallocated arena — one slab sized by
// the token count — so a parse costs O(1) node allocations instead of one per
// node. The arena is never grown after pointers are taken, so node pointers
// stay valid for the life of the tree.
func Parse(src string) *Node {
	tk := tokenizerPool.Get().(*Tokenizer)
	tokens := tk.Tokenize(src)
	// Upper bound: one node per token plus the document root. The arena must
	// be fully sized up front — appending would move it and invalidate every
	// *Node already handed out.
	arena := make([]Node, len(tokens)+1)
	used := 0
	alloc := func() *Node {
		n := &arena[used]
		used++
		return n
	}
	doc := alloc()
	doc.Type = DocumentNode
	doc.Tag = "#document"
	stack := []*Node{doc}
	top := func() *Node { return stack[len(stack)-1] }
	for _, tok := range tokens {
		switch tok.Type {
		case TextToken:
			if strings.TrimSpace(tok.Data) == "" && top().Tag != "script" && top().Tag != "style" {
				continue
			}
			t := alloc()
			t.Type = TextNode
			t.Data = html.UnescapeString(tok.Data)
			top().append(t)
		case CommentToken:
			c := alloc()
			c.Type = CommentNode
			c.Data = tok.Data
			top().append(c)
		case DoctypeToken:
			// Dropped: the DOM root stands in for the document type.
		case SelfClosingTagToken:
			el := alloc()
			el.Type = ElementNode
			el.Tag = tok.Data
			el.Attrs = tok.Attrs
			top().append(el)
		case StartTagToken:
			el := alloc()
			el.Type = ElementNode
			el.Tag = tok.Data
			el.Attrs = tok.Attrs
			top().append(el)
			stack = append(stack, el)
		case EndTagToken:
			// Pop to the nearest matching open element, if any.
			for k := len(stack) - 1; k > 0; k-- {
				if stack[k].Tag == tok.Data {
					stack = stack[:k]
					break
				}
			}
		}
	}
	tokenizerPool.Put(tk)
	return doc
}

// Clone returns a deep copy of the subtree rooted at n, with a nil Parent on
// the returned root. Attrs and Children backing arrays are fresh, so mutating
// the clone (SetAttr, AppendChild, script execution) can never alias the
// original. The copy is arena-allocated like Parse output.
func (n *Node) Clone() *Node {
	count, attrs, kids := 0, 0, 0
	n.Walk(func(c *Node) bool {
		count++
		attrs += len(c.Attrs)
		kids += len(c.Children)
		return true
	})
	// Three allocations total: one arena per kind. Sub-slices are handed out
	// with full-slice expressions (capped capacity), so a later append —
	// SetAttr adding an attribute, a script appending a child — copies out
	// instead of clobbering the neighbouring node's backing array.
	arena := make([]Node, count)
	attrBuf := make([]Attr, attrs)
	childBuf := make([]*Node, kids)
	used, attrUsed, childUsed := 0, 0, 0
	var clone func(src *Node, parent *Node) *Node
	clone = func(src *Node, parent *Node) *Node {
		dst := &arena[used]
		used++
		dst.Type = src.Type
		dst.Tag = src.Tag
		dst.Data = src.Data
		dst.Parent = parent
		if len(src.Attrs) > 0 {
			lo := attrUsed
			attrUsed += len(src.Attrs)
			dst.Attrs = attrBuf[lo:attrUsed:attrUsed]
			copy(dst.Attrs, src.Attrs)
		}
		if len(src.Children) > 0 {
			lo := childUsed
			childUsed += len(src.Children)
			dst.Children = childBuf[lo:childUsed:childUsed]
			for i, c := range src.Children {
				dst.Children[i] = clone(c, dst)
			}
		}
		return dst
	}
	return clone(n, nil)
}

func (n *Node) append(child *Node) {
	child.Parent = n
	n.Children = append(n.Children, child)
}

// AppendChild adds child as the last child of n (re-parenting it).
func (n *Node) AppendChild(child *Node) {
	if child.Parent != nil {
		child.Parent.RemoveChild(child)
	}
	n.append(child)
}

// RemoveChild detaches child from n. It is a no-op when child is not a child
// of n.
func (n *Node) RemoveChild(child *Node) {
	for i, c := range n.Children {
		if c == child {
			n.Children = append(n.Children[:i], n.Children[i+1:]...)
			child.Parent = nil
			return
		}
	}
}

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(key string) (string, bool) {
	key = strings.ToLower(key)
	for _, a := range n.Attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return "", false
}

// AttrOr returns the named attribute or def when absent.
func (n *Node) AttrOr(key, def string) string {
	if v, ok := n.Attr(key); ok {
		return v
	}
	return def
}

// SetAttr sets (or adds) an attribute.
func (n *Node) SetAttr(key, val string) {
	key = strings.ToLower(key)
	for i, a := range n.Attrs {
		if a.Key == key {
			n.Attrs[i].Val = val
			return
		}
	}
	n.Attrs = append(n.Attrs, Attr{Key: key, Val: val})
}

// Walk visits n and every descendant in document order. Returning false from
// fn stops the walk.
func (n *Node) Walk(fn func(*Node) bool) bool {
	if !fn(n) {
		return false
	}
	for _, c := range n.Children {
		if !c.Walk(fn) {
			return false
		}
	}
	return true
}

// Find returns all descendant elements with the given tag name.
func (n *Node) Find(tag string) []*Node {
	tag = strings.ToLower(tag)
	var out []*Node
	n.Walk(func(c *Node) bool {
		if c.Type == ElementNode && c.Tag == tag {
			out = append(out, c)
		}
		return true
	})
	return out
}

// First returns the first descendant element with the given tag, or nil.
func (n *Node) First(tag string) *Node {
	tag = strings.ToLower(tag)
	var found *Node
	n.Walk(func(c *Node) bool {
		if c.Type == ElementNode && c.Tag == tag {
			found = c
			return false
		}
		return true
	})
	return found
}

// ByID returns the element with the given id attribute, or nil.
func (n *Node) ByID(id string) *Node {
	var found *Node
	n.Walk(func(c *Node) bool {
		if c.Type == ElementNode {
			if v, ok := c.Attr("id"); ok && v == id {
				found = c
				return false
			}
		}
		return true
	})
	return found
}

// Body returns the <body> element, or the document itself when absent.
func (n *Node) Body() *Node {
	if b := n.First("body"); b != nil {
		return b
	}
	return n
}

// Title returns the document title text.
func (n *Node) Title() string {
	if t := n.First("title"); t != nil {
		return strings.TrimSpace(t.Text())
	}
	return ""
}

// Text returns the concatenated text content of n and its descendants,
// excluding non-rendered subtrees (script and style bodies, and the head
// with its title) — i.e. what a visitor actually sees. Unlike Walk, an
// excluded subtree is skipped without ending the traversal.
func (n *Node) Text() string {
	var b strings.Builder
	var visit func(c *Node, root bool)
	visit = func(c *Node, root bool) {
		if c.Type == ElementNode && !root {
			switch c.Tag {
			case "script", "style", "head", "title":
				return
			}
		}
		if c.Type == TextNode {
			b.WriteString(c.Data)
		}
		for _, child := range c.Children {
			visit(child, false)
		}
	}
	visit(n, true)
	return b.String()
}

// Links returns the href values of all anchors.
func (n *Node) Links() []string {
	var out []string
	for _, a := range n.Find("a") {
		if href, ok := a.Attr("href"); ok {
			out = append(out, href)
		}
	}
	return out
}

// Scripts returns the inline bodies of all <script> elements without a src
// attribute.
func (n *Node) Scripts() []string {
	var out []string
	for _, s := range n.Find("script") {
		if _, ok := s.Attr("src"); ok {
			continue
		}
		var b strings.Builder
		for _, c := range s.Children {
			if c.Type == TextNode {
				b.WriteString(c.Data)
			}
		}
		out = append(out, b.String())
	}
	return out
}

// Form describes one HTML form with its fields.
type Form struct {
	Node   *Node
	Action string // as written; empty means "submit to the current URL"
	Method string // upper-case; GET when unspecified
	Fields map[string]string
}

// Forms extracts every form with its input/textarea/select fields and their
// default values.
func (n *Node) Forms() []Form {
	var out []Form
	for _, f := range n.Find("form") {
		form := Form{
			Node:   f,
			Action: f.AttrOr("action", ""),
			Method: strings.ToUpper(f.AttrOr("method", "GET")),
			Fields: map[string]string{},
		}
		for _, input := range f.Find("input") {
			name, ok := input.Attr("name")
			if !ok || name == "" {
				continue
			}
			form.Fields[name] = input.AttrOr("value", "")
		}
		for _, ta := range f.Find("textarea") {
			if name, ok := ta.Attr("name"); ok && name != "" {
				form.Fields[name] = strings.TrimSpace(ta.Text())
			}
		}
		for _, sel := range f.Find("select") {
			name, ok := sel.Attr("name")
			if !ok || name == "" {
				continue
			}
			val := ""
			for _, opt := range sel.Find("option") {
				if _, selected := opt.Attr("selected"); selected || val == "" {
					val = opt.AttrOr("value", strings.TrimSpace(opt.Text()))
				}
			}
			form.Fields[name] = val
		}
		out = append(out, form)
	}
	return out
}

// Render serialises the node back to HTML.
func (n *Node) Render() string {
	var b strings.Builder
	n.render(&b)
	return b.String()
}

func (n *Node) render(b *strings.Builder) {
	switch n.Type {
	case DocumentNode:
		for _, c := range n.Children {
			c.render(b)
		}
	case TextNode:
		b.WriteString(html.EscapeString(n.Data))
	case CommentNode:
		fmt.Fprintf(b, "<!--%s-->", n.Data)
	case ElementNode:
		b.WriteByte('<')
		b.WriteString(n.Tag)
		for _, a := range n.Attrs {
			fmt.Fprintf(b, " %s=%q", a.Key, a.Val)
		}
		b.WriteByte('>')
		if voidElements[n.Tag] {
			return
		}
		if n.Tag == "script" || n.Tag == "style" {
			for _, c := range n.Children {
				if c.Type == TextNode {
					b.WriteString(c.Data) // raw, not escaped
				}
			}
		} else {
			for _, c := range n.Children {
				c.render(b)
			}
		}
		fmt.Fprintf(b, "</%s>", n.Tag)
	}
}

// NewElement creates a detached element node.
func NewElement(tag string) *Node {
	return &Node{Type: ElementNode, Tag: strings.ToLower(tag)}
}

// NewText creates a detached text node.
func NewText(data string) *Node {
	return &Node{Type: TextNode, Data: data}
}
