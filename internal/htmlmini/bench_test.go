package htmlmini

import "testing"

func BenchmarkParseLoginPage(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		doc := Parse(samplePage)
		if doc.Title() == "" {
			b.Fatal("no title")
		}
	}
}

func BenchmarkFormsExtraction(b *testing.B) {
	doc := Parse(samplePage)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(doc.Forms()) != 1 {
			b.Fatal("form count")
		}
	}
}

func BenchmarkRender(b *testing.B) {
	doc := Parse(samplePage)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if doc.Render() == "" {
			b.Fatal("empty render")
		}
	}
}
