package htmlmini

import "testing"

// FuzzParse checks the parser's totality and the render/parse fixpoint on
// arbitrary byte soup. Run with `go test -fuzz=FuzzParse ./internal/htmlmini`
// for deep exploration; the seed corpus runs as a normal test.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"<html><body><p>hi</p></body></html>",
		"<div><p>one<p>two</div></span><b>after</b>",
		`<script>if (a<b) { x = "</div>"; }</script>`,
		"<!-- comment --><!DOCTYPE html><input name=q value=search>",
		"<<<>>><a href='x'>",
		"<form action=\"/l\" method=post><input name=u><textarea name=t>txt</textarea></form>",
		"<title>unterminated",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		doc := Parse(src) // must not panic
		re := Parse(doc.Render())
		count := func(n *Node) int {
			c := 0
			n.Walk(func(x *Node) bool {
				if x.Type == ElementNode {
					c++
				}
				return true
			})
			return c
		}
		if count(doc) != count(re) {
			t.Fatalf("render/parse changed element count for %q", src)
		}
	})
}
