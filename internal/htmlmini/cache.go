package htmlmini

import "sync"

// ParseCache is a content-addressed cache of parsed DOM templates. Get parses
// each distinct source string once and serves deep clones afterwards, so
// callers can freely mutate what they receive (browser script execution
// rewrites attributes and subtrees) without poisoning the cache.
//
// Keys are the full source text: entries are bucketed by FNV-1a hash and then
// compared byte-for-byte, so a hash collision can never serve the wrong tree.
// The cache is safe for concurrent use; because Parse is a pure function of
// its input, cache hits are bit-identical to fresh parses and the cache never
// affects simulation output.
type ParseCache struct {
	mu      sync.Mutex
	entries map[uint64][]parseEntry
	hits    uint64
	misses  uint64
}

type parseEntry struct {
	src      string
	template *Node    // never escapes; only clones are handed out
	scripts  []string // template.Scripts(), extracted once; callers must not mutate
}

// maxParseCacheEntries bounds the cache; a simulated world serves a few
// hundred distinct pages, so the bound exists only to keep a pathological
// workload from growing without limit. On overflow the cache resets.
const maxParseCacheEntries = 4096

// NewParseCache returns an empty cache.
func NewParseCache() *ParseCache {
	return &ParseCache{entries: make(map[uint64][]parseEntry)}
}

// Get returns a freshly cloned DOM for src, parsing it only on first sight.
// A nil cache degrades to a plain Parse.
//
//phishlint:hotpath
func (c *ParseCache) Get(src string) *Node {
	if c == nil {
		return Parse(src) //phishlint:allow allocfree nil-cache degrade path; callers opt out of caching explicitly
	}
	h := fnv64a(src)
	c.mu.Lock()
	for _, e := range c.entries[h] {
		if e.src == src {
			c.hits++
			tpl := e.template
			c.mu.Unlock()
			return tpl.Clone() //phishlint:allow allocfree clones are the product: callers mutate what they receive, so each hit pays Clone's three arena allocations by design
		}
	}
	c.misses++
	c.mu.Unlock()
	tpl := Parse(src) //phishlint:allow allocfree miss path parses once per distinct page source
	c.mu.Lock()
	if c.total() >= maxParseCacheEntries {
		c.entries = make(map[uint64][]parseEntry) //phishlint:allow allocfree cache reset on pathological overflow, not the steady-state path
	}
	c.entries[h] = append(c.entries[h], parseEntry{src: src, template: tpl, scripts: tpl.Scripts()})
	c.mu.Unlock()
	return tpl.Clone() //phishlint:allow allocfree clones are the product: callers mutate what they receive, so each hit pays Clone's three arena allocations by design
}

// Scripts returns the inline script sources of the page with the given
// source text, extracting them once per distinct page. The returned slice is
// shared — callers must treat it as read-only. A nil cache (or a page not yet
// cached) degrades to extracting from dom, the caller's parsed copy.
//
//phishlint:hotpath
func (c *ParseCache) Scripts(src string, dom *Node) []string {
	if c == nil {
		return dom.Scripts()
	}
	h := fnv64a(src)
	c.mu.Lock()
	for _, e := range c.entries[h] {
		if e.src == src {
			scripts := e.scripts
			c.mu.Unlock()
			return scripts
		}
	}
	c.mu.Unlock()
	return dom.Scripts()
}

// Stats reports cache hits and misses so far.
func (c *ParseCache) Stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

func (c *ParseCache) total() int {
	n := 0
	for _, b := range c.entries {
		n += len(b)
	}
	return n
}

//phishlint:hotpath
func fnv64a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
