package whois

import (
	"strings"
	"testing"
	"time"
)

func sample() Record {
	return Record{
		Domain:     "garden-tools.example",
		Registrar:  "OVH",
		Registrant: "Research Lab",
		Created:    time.Date(2020, 4, 10, 9, 0, 0, 0, time.UTC),
		Expires:    time.Date(2021, 4, 10, 9, 0, 0, 0, time.UTC),
		DNSSEC:     true,
		AbuseEmail: "abuse@hosting.example",
	}
}

func TestLookupUnregisteredIsNotFound(t *testing.T) {
	t.Parallel()
	db := NewDB()
	if _, ok := db.Lookup("nobody.example"); ok {
		t.Fatal("unregistered domain should not be found")
	}
	if got := db.Text("nobody.example"); got != NotFound {
		t.Fatalf("Text = %q, want %q", got, NotFound)
	}
}

func TestPutThenLookup(t *testing.T) {
	t.Parallel()
	db := NewDB()
	db.Put(sample())
	r, ok := db.Lookup("GARDEN-TOOLS.example")
	if !ok {
		t.Fatal("registered domain should be found, case-insensitively")
	}
	if r.Registrar != "OVH" {
		t.Fatalf("Registrar = %q, want OVH", r.Registrar)
	}
}

func TestDeleteReturnsToNotFound(t *testing.T) {
	t.Parallel()
	db := NewDB()
	db.Put(sample())
	db.Delete("garden-tools.example")
	if _, ok := db.Lookup("garden-tools.example"); ok {
		t.Fatal("deleted domain should be NOT FOUND")
	}
}

func TestTextRendering(t *testing.T) {
	t.Parallel()
	db := NewDB()
	db.Put(sample())
	text := db.Text("garden-tools.example")
	for _, want := range []string{
		"Domain Name: GARDEN-TOOLS.EXAMPLE",
		"Registrar: OVH",
		"DNSSEC: signedDelegation",
		"Registrar Abuse Contact Email: abuse@hosting.example",
		"2020-04-10T09:00:00Z",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("Text missing %q in:\n%s", want, text)
		}
	}
}

func TestTextUnsigned(t *testing.T) {
	t.Parallel()
	db := NewDB()
	r := sample()
	r.DNSSEC = false
	r.AbuseEmail = ""
	db.Put(r)
	text := db.Text(r.Domain)
	if !strings.Contains(text, "DNSSEC: unsigned") {
		t.Fatalf("Text should show unsigned DNSSEC:\n%s", text)
	}
	if strings.Contains(text, "Abuse Contact") {
		t.Fatalf("Text should omit empty abuse contact:\n%s", text)
	}
}

func TestQueriesCounter(t *testing.T) {
	t.Parallel()
	db := NewDB()
	db.Put(sample())
	db.Lookup("garden-tools.example")
	db.Lookup("missing.example")
	db.Text("garden-tools.example") // Text performs a lookup too
	if got := db.Queries(); got != 3 {
		t.Fatalf("Queries() = %d, want 3", got)
	}
}
