// Package whois simulates the WHOIS registration-data service.
//
// Pipeline step 3 of the paper collects WHOIS data for candidate drop-catch
// domains and keeps only those answering "NOT FOUND", confirming they are
// genuinely unregistered. Registrars in this simulation publish records here
// on every registration.
package whois

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// NotFound is the textual answer for an unregistered domain, mirroring the
// "NOT FOUND" responses the paper matched on.
const NotFound = "NOT FOUND"

// Record is the registration data for one domain.
type Record struct {
	Domain     string
	Registrar  string
	Registrant string
	Created    time.Time
	Expires    time.Time
	DNSSEC     bool
	AbuseEmail string // abuse contact for the hosting/registrant network
}

// DB is the WHOIS database. The zero value is not usable; call NewDB.
type DB struct {
	mu      sync.RWMutex
	records map[string]Record
	queries int64
}

// NewDB returns an empty WHOIS database.
func NewDB() *DB {
	return &DB{records: make(map[string]Record)}
}

// Put inserts or replaces the record for r.Domain.
func (db *DB) Put(r Record) {
	key := canonical(r.Domain)
	db.mu.Lock()
	db.records[key] = r
	db.mu.Unlock()
}

// Delete removes the record for domain (e.g. after expiry), making it
// NOT FOUND again.
func (db *DB) Delete(domain string) {
	db.mu.Lock()
	delete(db.records, canonical(domain))
	db.mu.Unlock()
}

// Lookup returns the record for domain. ok is false — and the textual answer
// would be NOT FOUND — when the domain is unregistered.
func (db *DB) Lookup(domain string) (Record, bool) {
	db.mu.Lock()
	db.queries++
	db.mu.Unlock()
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.records[canonical(domain)]
	return r, ok
}

// Text renders the WHOIS answer for domain as the line-oriented text a WHOIS
// client would print.
func (db *DB) Text(domain string) string {
	r, ok := db.Lookup(domain)
	if !ok {
		return NotFound
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Domain Name: %s\n", strings.ToUpper(canonical(r.Domain)))
	fmt.Fprintf(&b, "Registrar: %s\n", r.Registrar)
	fmt.Fprintf(&b, "Registrant: %s\n", r.Registrant)
	fmt.Fprintf(&b, "Creation Date: %s\n", r.Created.UTC().Format(time.RFC3339))
	fmt.Fprintf(&b, "Registry Expiry Date: %s\n", r.Expires.UTC().Format(time.RFC3339))
	if r.DNSSEC {
		fmt.Fprintf(&b, "DNSSEC: signedDelegation\n")
	} else {
		fmt.Fprintf(&b, "DNSSEC: unsigned\n")
	}
	if r.AbuseEmail != "" {
		fmt.Fprintf(&b, "Registrar Abuse Contact Email: %s\n", r.AbuseEmail)
	}
	return b.String()
}

// Queries reports how many lookups have been served.
func (db *DB) Queries() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.queries
}

func canonical(domain string) string {
	return strings.TrimSuffix(strings.ToLower(strings.TrimSpace(domain)), ".")
}
