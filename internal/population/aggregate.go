package population

import (
	"fmt"
	"strings"
	"time"
)

// VisitOutcome classifies one realised visit. Outcomes are exclusive and
// ordered by how far the victim got.
type VisitOutcome int

const (
	// OutcomeSpotted: the victim inspected the URL and aborted before any
	// content loaded (Lain et al.'s URL-inspection skill).
	OutcomeSpotted VisitOutcome = iota
	// OutcomeBlocked: the victim's blacklist guard blocked the page.
	OutcomeBlocked
	// OutcomeBounced: the victim loaded the page but the evasion gate kept
	// the payload hidden or the victim left without credentials.
	OutcomeBounced
	// OutcomeFell: the victim reached the payload and submitted
	// credentials.
	OutcomeFell

	numOutcomes
)

// String names the outcome for tables.
func (o VisitOutcome) String() string {
	switch o {
	case OutcomeSpotted:
		return "spotted"
	case OutcomeBlocked:
		return "blocked"
	case OutcomeBounced:
		return "bounced"
	case OutcomeFell:
		return "fell"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// Cell is the aggregate for one (cohort, technique) pair. All fields are
// additive counts, so cells merge commutatively and the shard-ordered fold
// is deterministic for any worker count.
type Cell struct {
	Victims  int // victims assigned to this cell
	Visits   int // realised visits
	Outcomes [numOutcomes]int
	Reports  int // community reports filed from this cell
}

// Aggregator accumulates a population study into fixed cells: one Cell per
// (cohort, technique) pair per shard. Memory is O(shards × cohorts ×
// techniques) — independent of population size — and each shard writes only
// its own plane, so no locking is needed under the sharded scheduler.
type Aggregator struct {
	cohorts, arms int
	planes        [][]Cell // [shard][cohort*arms + arm]
}

// NewAggregator sizes the fixed cells.
func NewAggregator(shards, cohorts, arms int) *Aggregator {
	if shards < 1 {
		shards = 1
	}
	planes := make([][]Cell, shards)
	for s := range planes {
		planes[s] = make([]Cell, cohorts*arms)
	}
	return &Aggregator{cohorts: cohorts, arms: arms, planes: planes}
}

func (a *Aggregator) cell(shard, cohort, arm int) *Cell {
	return &a.planes[shard][cohort*a.arms+arm]
}

// AddVictim counts a victim into their cell. Call from the victim's home
// shard only.
func (a *Aggregator) AddVictim(shard, cohort, arm int) {
	a.cell(shard, cohort, arm).Victims++
}

// Visit folds one realised visit. Call from the victim's home shard only.
func (a *Aggregator) Visit(shard, cohort, arm int, outcome VisitOutcome, reported bool) {
	c := a.cell(shard, cohort, arm)
	c.Visits++
	c.Outcomes[outcome]++
	if reported {
		c.Reports++
	}
}

// Merged folds the per-shard planes in shard order into one table of
// cohorts × arms cells.
func (a *Aggregator) Merged() []Cell {
	out := make([]Cell, a.cohorts*a.arms)
	for _, plane := range a.planes {
		for i, c := range plane {
			out[i].Victims += c.Victims
			out[i].Visits += c.Visits
			for o, n := range c.Outcomes {
				out[i].Outcomes[o] += n
			}
			out[i].Reports += c.Reports
		}
	}
	return out
}

// CommunityRow is the community-verification outcome for one technique arm:
// how many reports the engines' community queue received, how many voter
// confirmations accumulated, and whether the arm's URLs were published to
// the blacklist or remain pending — the paper's headline rendered per arm.
type CommunityRow struct {
	Technique     string
	Reports       int
	Confirmations int
	Published     int // URLs published to the community blacklist
	Pending       int // URLs still unverified at study end
}

// Results is a completed population study.
type Results struct {
	Spec       Spec
	Seed       int64
	Techniques []string // arm index -> technique name
	Cells      []Cell   // merged, [cohort*len(Techniques) + arm]
	Community  []CommunityRow
	// PeakHeapBytes is the sampled heap high-water mark when
	// Spec.MeasureHeap was set (0 otherwise). Wall-side measurement, not
	// part of the deterministic table.
	PeakHeapBytes uint64
	// VirtualDuration is the simulated span of the study.
	VirtualDuration time.Duration
	// WallSeconds and VictimsPerSec are wall-clock throughput measurements;
	// RenderTable excludes them so deterministic output stays comparable.
	WallSeconds   float64
	VictimsPerSec float64
}

// Cell returns the merged cell for (cohort, arm).
func (r *Results) Cell(cohort, arm int) Cell {
	return r.Cells[cohort*len(r.Techniques)+arm]
}

// RenderTable formats the per-cohort outcome table and the community
// verification summary. Output is deterministic: fixed iteration order, no
// wall-clock values.
func (r *Results) RenderTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Population %q: %d victims, %d cohorts, seed %d\n\n",
		r.Spec.Name, r.Spec.Size, len(r.Spec.Cohorts), r.Seed)
	fmt.Fprintf(&b, "%-18s %-10s %9s %9s %9s %9s %9s %9s %9s\n",
		"cohort", "technique", "victims", "visits", "spotted", "blocked", "bounced", "fell", "reports")
	for ci, c := range r.Spec.Cohorts {
		for ai, tech := range r.Techniques {
			cell := r.Cell(ci, ai)
			fmt.Fprintf(&b, "%-18s %-10s %9d %9d %9d %9d %9d %9d %9d\n",
				c.Name, tech, cell.Victims, cell.Visits,
				cell.Outcomes[OutcomeSpotted], cell.Outcomes[OutcomeBlocked],
				cell.Outcomes[OutcomeBounced], cell.Outcomes[OutcomeFell],
				cell.Reports)
		}
	}
	b.WriteString("\nCommunity verification:\n")
	fmt.Fprintf(&b, "%-10s %9s %14s %10s %9s\n", "technique", "reports", "confirmations", "published", "pending")
	for _, row := range r.Community {
		fmt.Fprintf(&b, "%-10s %9d %14d %10d %9d\n",
			row.Technique, row.Reports, row.Confirmations, row.Published, row.Pending)
	}
	return b.String()
}
