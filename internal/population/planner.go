package population

import (
	"fmt"
	"time"

	"areyouhuman/internal/chaos"
)

// MaxVisitsPerVictim caps one victim's realised visit count: visit events
// per pump batch must stay bounded for the constant-memory contract.
const MaxVisitsPerVictim = 8

// Victim is one positional derivation — everything the stage needs to
// schedule victim i, recomputable at any time from (seed, i) alone. No
// Victim is ever retained: the pump derives one, schedules its visits, and
// drops it.
type Victim struct {
	// Index is the victim's position in the population.
	Index int
	// Cohort indexes the spec's cohorts.
	Cohort int
	// Home indexes the stage's home hosts: every event belonging to this
	// victim runs on the home host's scheduler shard, next to the lure
	// deployment the victim visits.
	Home int
	// Technique indexes the stage's technique arms.
	Technique int
	// Visits is the realised visit count (mean = the cohort's
	// VisitsPerDay, capped at MaxVisitsPerVictim).
	Visits int
}

// Planner derives victims positionally, the campaign planner's discipline
// applied to people instead of URLs: victim i's stream is
// SplitSeed(seed, i+1), and every draw about that victim — cohort, home,
// technique arm, visit count, per-visit behaviour — hashes a labelled
// substream of it. Draws are order-independent, so the sharded scheduler
// can realise visits in any worker interleaving and the outcome is
// identical.
type Planner struct {
	seed  int64
	spec  Spec
	homes int
	arms  int
	cum   []float64 // cumulative cohort shares
}

// NewPlanner builds a planner over a validated spec. homes is the number of
// home hosts victims hash onto; arms the number of technique arms.
func NewPlanner(seed int64, spec Spec, homes, arms int) *Planner {
	cum := make([]float64, len(spec.Cohorts))
	sum := 0.0
	for i, c := range spec.Cohorts {
		sum += c.Share
		cum[i] = sum
	}
	// Guard the last bucket against float drift so a draw of 0.999... can
	// never fall past the final cohort.
	cum[len(cum)-1] = 1
	return &Planner{seed: seed, spec: spec, homes: homes, arms: arms, cum: cum}
}

// Victim-stream substream indices. Victim-level draws use 1..7; visit-level
// draws start at visitStreamBase and stride by visitStreams per visit.
const (
	streamCohort = 1 + iota
	streamHome
	streamTechnique
	streamVisits

	visitStreamBase = 8
	visitStreams    = 4

	visitStreamSpot   = iota - 4 // 0
	visitStreamFall              // 1
	visitStreamReport            // 2
	visitStreamJitter            // 3
)

// u returns victim i's uniform draw for substream k: the victim stream
// folded through SplitSeed again, so adjacent victims and adjacent
// substreams are decorrelated by two avalanche rounds.
func (p *Planner) u(i, k int) float64 {
	vs := chaos.SplitSeed(p.seed, i+1)
	d := uint64(chaos.SplitSeed(vs, k))
	return float64(d>>11) / (1 << 53)
}

// visitStream maps (visit, purpose) to a victim substream index.
func visitStream(visit, purpose int) int {
	return visitStreamBase + visit*visitStreams + purpose
}

// At derives victim i.
func (p *Planner) At(i int) Victim {
	v := Victim{Index: i}
	u := p.u(i, streamCohort)
	for ci, c := range p.cum {
		if u < c {
			v.Cohort = ci
			break
		}
	}
	v.Home = int(p.u(i, streamHome) * float64(p.homes))
	if v.Home >= p.homes {
		v.Home = p.homes - 1
	}
	v.Technique = int(p.u(i, streamTechnique) * float64(p.arms))
	if v.Technique >= p.arms {
		v.Technique = p.arms - 1
	}
	mean := p.spec.Cohorts[v.Cohort].VisitsPerDay
	v.Visits = int(mean)
	if frac := mean - float64(v.Visits); frac > 0 && p.u(i, streamVisits) < frac {
		v.Visits++
	}
	if v.Visits > MaxVisitsPerVictim {
		v.Visits = MaxVisitsPerVictim
	}
	return v
}

// VisitOffset places victim i's visit k within the victim's active window.
func (p *Planner) VisitOffset(i, visit int, span time.Duration) time.Duration {
	return time.Duration(p.u(i, visitStream(visit, visitStreamJitter)) * float64(span))
}

// Spots reports whether victim i inspects the URL on visit k and aborts
// before any content loads.
func (p *Planner) Spots(i, visit, cohort int) bool {
	return p.u(i, visitStream(visit, visitStreamSpot)) < p.spec.Cohorts[cohort].Skill
}

// Falls reports whether victim i, having reached the payload on visit k,
// submits credentials.
func (p *Planner) Falls(i, visit, cohort int) bool {
	return p.u(i, visitStream(visit, visitStreamFall)) < p.spec.Cohorts[cohort].Susceptibility
}

// Reports reports whether victim i, having recognised the phish on visit k,
// files a community report.
func (p *Planner) Reports(i, visit, cohort int) bool {
	return p.u(i, visitStream(visit, visitStreamReport)) < p.spec.Cohorts[cohort].ReportRate
}

// SourceIP derives victim i's stable client address (documentation range,
// spread over /16s so engine-side per-IP state never concentrates).
func (p *Planner) SourceIP(i int) string {
	d := uint64(chaos.SplitSeed(p.seed, i+1))
	return fmt.Sprintf("100.%d.%d.%d", 64+(d>>16)%64, (d>>8)%256, 1+d%254)
}
