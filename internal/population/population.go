// Package population models a deterministic heterogeneous victim
// population for the exposure side of the study. The paper's headline —
// human-verification evasion starves exactly the channels that depend on
// humans — only plays out the way Section 5 assumes if the humans differ:
// Lain et al. (arXiv:2502.20234) measured that real users vary sharply in
// how carefully they inspect URLs, how readily they type credentials, and
// whether they ever report what they saw. A population is a small set of
// cohorts carrying those rates; everything per-victim (cohort membership,
// home host, technique arm, visit count, per-visit behaviour draws) derives
// positionally from (seed, victim index) alone, so a million-victim study
// needs no per-victim state and is byte-identical for any scheduler worker
// count.
//
// The package mirrors internal/campaign's streaming design: a positional
// Planner replaces retained victim records, and a fixed-cell Aggregator
// replaces per-victim results, so the experiment stage's memory is bounded
// by one pump batch regardless of population size.
package population

import (
	"errors"
	"fmt"
	"sort"
)

// DefaultSize is the victim count a spec gets when Size is zero, and the
// base the TrafficScale compat shim multiplies (see Uniform).
const DefaultSize = 10_000

// MaxCohorts bounds a spec: the aggregator allocates fixed cells per
// (cohort, technique) pair, and a handful of cohorts is all the source
// studies distinguish.
const MaxCohorts = 16

// shareTolerance is how far cohort shares may sum from 1 before the spec is
// rejected (floating-point slack, not a semantic allowance).
const shareTolerance = 1e-6

// ErrSpec matches every invalid population spec.
var ErrSpec = errors.New("population: invalid spec")

// ErrPreset reports an unknown preset name.
var ErrPreset = errors.New("population: unknown preset")

// Cohort is one victim segment. All rates are probabilities in [0, 1];
// Share is the cohort's fraction of the population.
type Cohort struct {
	// Name labels the cohort in tables.
	Name string
	// Share is the cohort's fraction of the population. Shares across a
	// spec must sum to 1.
	Share float64
	// Skill is the probability that a victim inspects the URL before the
	// page loads and aborts (the URL-inspection behaviour Lain et al.
	// measured). A skilled abort happens before any content is fetched.
	Skill float64
	// Susceptibility is the probability that a victim who reached the
	// phishing payload goes on to submit credentials.
	Susceptibility float64
	// ReportRate is the probability that a victim who recognised the phish
	// (either by spotting the URL or by reaching the payload without
	// falling for it) files a community report — the channel feeding
	// PhishTank-style community verification.
	ReportRate float64
	// VisitsPerDay is the expected number of lure-follow visits the victim
	// makes during their active window (fractional means are realised
	// deterministically per victim).
	VisitsPerDay float64
}

// Spec describes a victim population.
type Spec struct {
	// Name labels the spec ("uniform", "paper", "lain2025", or free-form).
	Name string
	// Size is the victim count (0 selects DefaultSize).
	Size int
	// Cohorts partition the population. Empty selects the uniform preset's
	// single cohort.
	Cohorts []Cohort
	// MeasureHeap samples the heap high-water mark at pump-batch
	// boundaries (one forced GC per batch). It is a measurement knob, not
	// part of the population model: results are identical either way, and
	// the sampled peak is reported outside the deterministic table.
	MeasureHeap bool
}

// WithDefaults fills the zero fields: DefaultSize victims, the uniform
// preset's cohorts.
func (s Spec) WithDefaults() Spec {
	if s.Size == 0 {
		s.Size = DefaultSize
	}
	if len(s.Cohorts) == 0 {
		u, _ := Preset("uniform")
		s.Cohorts = u.Cohorts
		if s.Name == "" {
			s.Name = u.Name
		}
	}
	if s.Name == "" {
		s.Name = "custom"
	}
	return s
}

// Validate rejects malformed specs. Call after WithDefaults; a spec with no
// cohorts is invalid.
func (s Spec) Validate() error {
	if s.Size < 1 {
		return fmt.Errorf("%w: size must be >= 1, got %d", ErrSpec, s.Size)
	}
	if len(s.Cohorts) == 0 {
		return fmt.Errorf("%w: at least one cohort required", ErrSpec)
	}
	if len(s.Cohorts) > MaxCohorts {
		return fmt.Errorf("%w: %d cohorts exceeds the maximum %d", ErrSpec, len(s.Cohorts), MaxCohorts)
	}
	sum := 0.0
	for i, c := range s.Cohorts {
		if c.Name == "" {
			return fmt.Errorf("%w: cohort %d has no name", ErrSpec, i)
		}
		if c.Share <= 0 || c.Share > 1 {
			return fmt.Errorf("%w: cohort %q share %v outside (0, 1]", ErrSpec, c.Name, c.Share)
		}
		for _, p := range []struct {
			name string
			v    float64
		}{
			{"skill", c.Skill},
			{"susceptibility", c.Susceptibility},
			{"report rate", c.ReportRate},
		} {
			if p.v < 0 || p.v > 1 {
				return fmt.Errorf("%w: cohort %q %s %v outside [0, 1]", ErrSpec, c.Name, p.name, p.v)
			}
		}
		if c.VisitsPerDay < 0 || c.VisitsPerDay > float64(MaxVisitsPerVictim) {
			return fmt.Errorf("%w: cohort %q visits/day %v outside [0, %d]", ErrSpec, c.Name, c.VisitsPerDay, MaxVisitsPerVictim)
		}
		sum += c.Share
	}
	if sum < 1-shareTolerance || sum > 1+shareTolerance {
		return fmt.Errorf("%w: cohort shares sum to %v, want 1", ErrSpec, sum)
	}
	return nil
}

// presets are the built-in populations. "uniform" reproduces the classic
// exposure stage's homogeneous victim stream (everyone visits once, half of
// those exposed type credentials, a few report). "paper" sketches the IMC
// 2020 study's implicit spam-campaign audience. "lain2025" follows the
// enterprise phishing study of Lain et al.: a careful minority that inspects
// URLs and reports, a small habitual-clicker segment that falls for nearly
// everything and reports nothing, and a broad middle.
func presets() map[string]Spec {
	return map[string]Spec{
		"uniform": {
			Name: "uniform",
			Cohorts: []Cohort{
				{Name: "everyone", Share: 1, Skill: 0.05, Susceptibility: 0.50, ReportRate: 0.10, VisitsPerDay: 1},
			},
		},
		"paper": {
			Name: "paper",
			Cohorts: []Cohort{
				{Name: "office", Share: 0.50, Skill: 0.10, Susceptibility: 0.45, ReportRate: 0.08, VisitsPerDay: 1},
				{Name: "mobile", Share: 0.35, Skill: 0.04, Susceptibility: 0.60, ReportRate: 0.02, VisitsPerDay: 1.4},
				{Name: "security-aware", Share: 0.15, Skill: 0.60, Susceptibility: 0.08, ReportRate: 0.50, VisitsPerDay: 0.8},
			},
		},
		"lain2025": {
			Name: "lain2025",
			Cohorts: []Cohort{
				{Name: "careful", Share: 0.22, Skill: 0.78, Susceptibility: 0.05, ReportRate: 0.32, VisitsPerDay: 0.7},
				{Name: "average", Share: 0.45, Skill: 0.30, Susceptibility: 0.30, ReportRate: 0.08, VisitsPerDay: 1},
				{Name: "reporter", Share: 0.15, Skill: 0.55, Susceptibility: 0.12, ReportRate: 0.60, VisitsPerDay: 0.9},
				{Name: "habitual-clicker", Share: 0.18, Skill: 0.05, Susceptibility: 0.65, ReportRate: 0.02, VisitsPerDay: 1.6},
			},
		},
	}
}

// Preset returns a built-in population spec by name. The spec's Size is
// zero; callers size it (or let WithDefaults pick DefaultSize).
func Preset(name string) (Spec, error) {
	if s, ok := presets()[name]; ok {
		return s, nil
	}
	return Spec{}, fmt.Errorf("%w %q (have %v)", ErrPreset, name, Presets())
}

// Presets lists the built-in spec names, sorted.
func Presets() []string {
	m := presets()
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Uniform is the TrafficScale compatibility shim: it synthesizes the
// uniform preset sized by scale × DefaultSize (minimum 1). The legacy knob
// scaled a homogeneous victim stream; this is that stream expressed as a
// population.
func Uniform(scale float64) Spec {
	s, _ := Preset("uniform")
	s.Size = int(scale*float64(DefaultSize) + 0.5)
	if s.Size < 1 {
		s.Size = 1
	}
	return s
}
