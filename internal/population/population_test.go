package population

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestSpecValidate(t *testing.T) {
	t.Parallel()
	valid := func() Spec {
		s, err := Preset("paper")
		if err != nil {
			t.Fatalf("Preset: %v", err)
		}
		s.Size = 100
		return s
	}
	cases := []struct {
		name    string
		mutate  func(*Spec)
		wantErr string
	}{
		{"valid", func(*Spec) {}, ""},
		{"zero size", func(s *Spec) { s.Size = 0 }, "size"},
		{"negative size", func(s *Spec) { s.Size = -5 }, "size"},
		{"no cohorts", func(s *Spec) { s.Cohorts = nil }, "cohort"},
		{"too many cohorts", func(s *Spec) {
			s.Cohorts = make([]Cohort, MaxCohorts+1)
			for i := range s.Cohorts {
				s.Cohorts[i] = Cohort{Name: "c", Share: 1 / float64(MaxCohorts+1), VisitsPerDay: 1}
			}
		}, "cohorts exceeds"},
		{"unnamed cohort", func(s *Spec) { s.Cohorts[0].Name = "" }, "no name"},
		{"zero share", func(s *Spec) { s.Cohorts[0].Share = 0 }, "share"},
		{"share above one", func(s *Spec) { s.Cohorts[0].Share = 1.5 }, "share"},
		{"skill above one", func(s *Spec) { s.Cohorts[0].Skill = 1.2 }, "skill"},
		{"negative susceptibility", func(s *Spec) { s.Cohorts[0].Susceptibility = -0.1 }, "susceptibility"},
		{"report rate above one", func(s *Spec) { s.Cohorts[0].ReportRate = 2 }, "report rate"},
		{"visits above cap", func(s *Spec) { s.Cohorts[0].VisitsPerDay = MaxVisitsPerVictim + 1 }, "visits/day"},
		{"shares do not sum", func(s *Spec) { s.Cohorts[0].Share = 0.9 }, "sum"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			s := valid()
			tc.mutate(&s)
			err := s.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error containing %q", tc.wantErr)
			}
			if !errors.Is(err, ErrSpec) {
				t.Errorf("error %v does not wrap ErrSpec", err)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %v does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestWithDefaults(t *testing.T) {
	t.Parallel()
	s := Spec{}.WithDefaults()
	if s.Size != DefaultSize {
		t.Errorf("Size = %d, want %d", s.Size, DefaultSize)
	}
	if s.Name != "uniform" {
		t.Errorf("Name = %q, want uniform", s.Name)
	}
	if len(s.Cohorts) != 1 {
		t.Fatalf("Cohorts = %d, want 1", len(s.Cohorts))
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("defaulted spec invalid: %v", err)
	}

	named := Spec{Cohorts: []Cohort{{Name: "x", Share: 1, VisitsPerDay: 1}}}.WithDefaults()
	if named.Name != "custom" {
		t.Errorf("custom cohorts Name = %q, want custom", named.Name)
	}
}

func TestPresetsValid(t *testing.T) {
	t.Parallel()
	names := Presets()
	want := []string{"lain2025", "paper", "uniform"}
	if len(names) != len(want) {
		t.Fatalf("Presets() = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("Presets() = %v, want %v", names, want)
		}
	}
	for _, name := range names {
		s, err := Preset(name)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		if err := s.WithDefaults().Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", name, err)
		}
	}
	if _, err := Preset("nope"); !errors.Is(err, ErrPreset) {
		t.Errorf("Preset(nope) = %v, want ErrPreset", err)
	}
}

func TestUniformCompatShim(t *testing.T) {
	t.Parallel()
	s := Uniform(0.01)
	if s.Size != 100 {
		t.Errorf("Uniform(0.01).Size = %d, want 100", s.Size)
	}
	if s.Name != "uniform" || len(s.Cohorts) != 1 {
		t.Errorf("Uniform shim spec = %+v, want uniform single-cohort", s)
	}
	if got := Uniform(0).Size; got != 1 {
		t.Errorf("Uniform(0).Size = %d, want 1 (floor)", got)
	}
	if err := Uniform(0.002).Validate(); err != nil {
		t.Errorf("Uniform(0.002) invalid: %v", err)
	}
}

func TestPlannerDeterministic(t *testing.T) {
	t.Parallel()
	spec := mustPreset(t, "lain2025").WithDefaults()
	a := NewPlanner(21, spec, 16, 4)
	b := NewPlanner(21, spec, 16, 4)
	for i := 0; i < 500; i++ {
		if a.At(i) != b.At(i) {
			t.Fatalf("victim %d differs across planner instances", i)
		}
		for v := 0; v < a.At(i).Visits; v++ {
			c := a.At(i).Cohort
			if a.Spots(i, v, c) != b.Spots(i, v, c) ||
				a.Falls(i, v, c) != b.Falls(i, v, c) ||
				a.Reports(i, v, c) != b.Reports(i, v, c) {
				t.Fatalf("victim %d visit %d draws differ", i, v)
			}
		}
	}
	other := NewPlanner(22, spec, 16, 4)
	same := 0
	for i := 0; i < 500; i++ {
		if a.At(i) == other.At(i) {
			same++
		}
	}
	if same > 450 {
		t.Errorf("seeds 21 and 22 agree on %d/500 victims; draws look seed-insensitive", same)
	}
}

func TestPlannerDistributions(t *testing.T) {
	t.Parallel()
	spec := mustPreset(t, "lain2025")
	spec.Size = 40_000
	spec = spec.WithDefaults()
	const homes, arms = 16, 4
	p := NewPlanner(7, spec, homes, arms)

	cohortN := make([]int, len(spec.Cohorts))
	homeN := make([]int, homes)
	armN := make([]int, arms)
	visits := 0
	for i := 0; i < spec.Size; i++ {
		v := p.At(i)
		cohortN[v.Cohort]++
		homeN[v.Home]++
		armN[v.Technique]++
		visits += v.Visits
		if v.Visits < 0 || v.Visits > MaxVisitsPerVictim {
			t.Fatalf("victim %d visits %d out of range", i, v.Visits)
		}
	}
	for ci, c := range spec.Cohorts {
		got := float64(cohortN[ci]) / float64(spec.Size)
		if math.Abs(got-c.Share) > 0.02 {
			t.Errorf("cohort %q share = %.3f, want %.3f ± 0.02", c.Name, got, c.Share)
		}
	}
	for h, n := range homeN {
		got := float64(n) / float64(spec.Size)
		if math.Abs(got-1.0/homes) > 0.01 {
			t.Errorf("home %d share = %.3f, want %.3f ± 0.01", h, got, 1.0/homes)
		}
	}
	for a, n := range armN {
		got := float64(n) / float64(spec.Size)
		if math.Abs(got-1.0/arms) > 0.01 {
			t.Errorf("arm %d share = %.3f, want %.3f ± 0.01", a, got, 1.0/arms)
		}
	}
	// Expected visits/victim is the share-weighted mean of VisitsPerDay.
	wantMean := 0.0
	for _, c := range spec.Cohorts {
		wantMean += c.Share * c.VisitsPerDay
	}
	gotMean := float64(visits) / float64(spec.Size)
	if math.Abs(gotMean-wantMean) > 0.03 {
		t.Errorf("mean visits = %.3f, want %.3f ± 0.03", gotMean, wantMean)
	}
}

func TestPlannerBehaviourRates(t *testing.T) {
	t.Parallel()
	spec := mustPreset(t, "paper")
	spec.Size = 30_000
	spec = spec.WithDefaults()
	p := NewPlanner(11, spec, 16, 4)
	spot := make([]int, len(spec.Cohorts))
	fall := make([]int, len(spec.Cohorts))
	report := make([]int, len(spec.Cohorts))
	n := make([]int, len(spec.Cohorts))
	for i := 0; i < spec.Size; i++ {
		v := p.At(i)
		n[v.Cohort]++
		if p.Spots(i, 0, v.Cohort) {
			spot[v.Cohort]++
		}
		if p.Falls(i, 0, v.Cohort) {
			fall[v.Cohort]++
		}
		if p.Reports(i, 0, v.Cohort) {
			report[v.Cohort]++
		}
	}
	for ci, c := range spec.Cohorts {
		if n[ci] == 0 {
			t.Fatalf("cohort %q drew no victims", c.Name)
		}
		checks := []struct {
			name string
			got  float64
			want float64
		}{
			{"skill", float64(spot[ci]) / float64(n[ci]), c.Skill},
			{"susceptibility", float64(fall[ci]) / float64(n[ci]), c.Susceptibility},
			{"report rate", float64(report[ci]) / float64(n[ci]), c.ReportRate},
		}
		for _, ch := range checks {
			if math.Abs(ch.got-ch.want) > 0.03 {
				t.Errorf("cohort %q %s = %.3f, want %.3f ± 0.03", c.Name, ch.name, ch.got, ch.want)
			}
		}
	}
}

func TestAggregatorMergeShardOrderIndependent(t *testing.T) {
	t.Parallel()
	build := func(order []int) []Cell {
		a := NewAggregator(4, 2, 3)
		for _, s := range order {
			a.AddVictim(s, s%2, s%3)
			a.Visit(s, s%2, s%3, OutcomeFell, s%2 == 0)
			a.Visit(s, (s+1)%2, s%3, OutcomeSpotted, false)
		}
		return a.Merged()
	}
	x := build([]int{0, 1, 2, 3, 0, 1})
	y := build([]int{1, 0, 3, 2, 1, 0})
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("cell %d differs across fold orders: %+v vs %+v", i, x[i], y[i])
		}
	}
}

func TestRenderTableDeterministic(t *testing.T) {
	t.Parallel()
	spec := mustPreset(t, "paper")
	spec.Size = 10
	spec = spec.WithDefaults()
	agg := NewAggregator(2, len(spec.Cohorts), 2)
	agg.AddVictim(0, 0, 0)
	agg.Visit(0, 0, 0, OutcomeFell, true)
	agg.AddVictim(1, 2, 1)
	agg.Visit(1, 2, 1, OutcomeSpotted, false)
	r := Results{
		Spec:       spec,
		Seed:       21,
		Techniques: []string{"none", "recaptcha"},
		Cells:      agg.Merged(),
		Community: []CommunityRow{
			{Technique: "none", Reports: 1, Confirmations: 3, Published: 1},
			{Technique: "recaptcha", Reports: 1, Pending: 1},
		},
	}
	a, b := r.RenderTable(), r.RenderTable()
	if a != b {
		t.Fatal("RenderTable not deterministic")
	}
	for _, want := range []string{"office", "security-aware", "recaptcha", "Community verification", "pending"} {
		if !strings.Contains(a, want) {
			t.Errorf("table missing %q:\n%s", want, a)
		}
	}
}

func TestOutcomeString(t *testing.T) {
	t.Parallel()
	want := map[VisitOutcome]string{
		OutcomeSpotted: "spotted",
		OutcomeBlocked: "blocked",
		OutcomeBounced: "bounced",
		OutcomeFell:    "fell",
	}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(o), o.String(), s)
		}
	}
	if got := VisitOutcome(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown outcome String() = %q", got)
	}
}

func mustPreset(t *testing.T, name string) Spec {
	t.Helper()
	s, err := Preset(name)
	if err != nil {
		t.Fatalf("Preset(%q): %v", name, err)
	}
	return s
}
