// Package captcha simulates the Google reCAPTCHA v2 checkbox service.
//
// Three parties interact with it, as in the real protocol:
//
//   - the phishing page embeds a widget (WidgetHTML) keyed by a site key;
//   - a *human* visitor solves the challenge — in this simulation the
//     browser's CanSolveCAPTCHA capability fetches a response token from the
//     service's /issue endpoint — and the widget's callback receives the
//     token;
//   - the phishing *server* verifies the posted token against /siteverify
//     with its secret key before revealing the payload (Listing 1).
//
// Tokens are single-use and expire after two minutes, like the real thing.
// No anti-phishing bot can mint a token, which is precisely why the paper
// found reCAPTCHA to be the most effective evasion technique.
package captcha

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"areyouhuman/internal/simclock"
)

// TokenTTL is the validity window of an issued response token.
const TokenTTL = 2 * time.Minute

// sweepEvery is how many Issue calls pass between expired-token sweeps. The
// sweep amortises to O(1) per issue and keeps the token table bounded by
// the solve rate within one TTL, so million-victim studies hold a flat heap
// instead of retaining every token ever minted.
const sweepEvery = 1024

// Service is the CAPTCHA provider.
type Service struct {
	clock simclock.Clock

	mu      sync.Mutex
	sites   map[string]string // sitekey -> secret
	tokens  map[string]tokenInfo
	counter int
	issued  int64
	checks  int64
}

type tokenInfo struct {
	sitekey string
	expires time.Time
	used    bool
}

// NewService returns an empty CAPTCHA service on the given clock
// (simclock.Real when nil).
func NewService(clock simclock.Clock) *Service {
	if clock == nil {
		clock = simclock.Real
	}
	return &Service{
		clock:  clock,
		sites:  make(map[string]string),
		tokens: make(map[string]tokenInfo),
	}
}

// RegisterSite provisions a new site, returning its site key and secret.
func (s *Service) RegisterSite() (sitekey, secret string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counter++
	sitekey = fmt.Sprintf("6Lsim-%06d", s.counter)
	secret = fmt.Sprintf("6Lsec-%06d", s.counter)
	s.sites[sitekey] = secret
	return sitekey, secret
}

// Issue mints a response token for sitekey — the outcome of a human solving
// the checkbox. Unknown site keys fail.
func (s *Service) Issue(sitekey string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sites[sitekey]; !ok {
		return "", fmt.Errorf("captcha: unknown sitekey %q", sitekey)
	}
	s.issued++
	now := s.clock.Now()
	if s.issued%sweepEvery == 0 {
		for t, info := range s.tokens {
			if info.used || now.After(info.expires) {
				delete(s.tokens, t)
			}
		}
	}
	token := fmt.Sprintf("03A-%s-%d", sitekey, s.issued)
	s.tokens[token] = tokenInfo{sitekey: sitekey, expires: now.Add(TokenTTL)}
	return token, nil
}

// Verify checks a response token against the site secret: the server side of
// /siteverify. Tokens are consumed on first use.
func (s *Service) Verify(secret, token string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.checks++
	info, ok := s.tokens[token]
	if !ok || info.used {
		return false
	}
	if s.sites[info.sitekey] != secret {
		return false
	}
	if s.clock.Now().After(info.expires) {
		return false
	}
	info.used = true
	s.tokens[token] = info
	return true
}

// Stats reports issued-token and verification counts.
func (s *Service) Stats() (issued, verifications int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.issued, s.checks
}

// Handler serves the provider's HTTP API:
//
//	GET  /issue?sitekey=K          -> token text (human challenge completion)
//	POST /siteverify secret,response -> JSON {"success": bool}
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/issue", func(w http.ResponseWriter, r *http.Request) {
		token, err := s.Issue(r.URL.Query().Get("sitekey"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		io.WriteString(w, token)
	})
	mux.HandleFunc("/siteverify", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		if err := r.ParseForm(); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		ok := s.Verify(r.PostFormValue("secret"), r.PostFormValue("response"))
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]bool{"success": ok})
	})
	return mux
}

// WidgetHTML renders the checkbox widget for embedding in a page. host is
// the service's virtual hostname; callback is the page's JS function that
// receives the response token.
func WidgetHTML(host, sitekey, callback string) string {
	return fmt.Sprintf(
		`<div class="g-recaptcha" data-sitekey=%q data-callback=%q data-endpoint=%q></div>`,
		sitekey, callback, "http://"+host+"/issue")
}

// Client verifies tokens over HTTP against a Service mounted on a virtual
// host — the way the PHP kit in Listing 1 calls the siteverify API.
type Client struct {
	HTTP    *http.Client
	BaseURL string // e.g. "http://captcha-svc.example"
	Secret  string
}

// Verify posts the token to /siteverify and reports success.
func (c *Client) Verify(token string) bool {
	resp, err := c.HTTP.PostForm(strings.TrimSuffix(c.BaseURL, "/")+"/siteverify",
		map[string][]string{"secret": {c.Secret}, "response": {token}})
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	var out struct {
		Success bool `json:"success"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return false
	}
	return out.Success
}
