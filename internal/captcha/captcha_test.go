package captcha

import (
	"strings"
	"testing"
	"time"

	"areyouhuman/internal/simclock"
	"areyouhuman/internal/simnet"
)

func TestIssueAndVerify(t *testing.T) {
	t.Parallel()
	clock := simclock.New(simclock.Epoch)
	s := NewService(clock)
	sitekey, secret := s.RegisterSite()
	token, err := s.Issue(sitekey)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Verify(secret, token) {
		t.Fatal("fresh token should verify")
	}
}

func TestTokenSingleUse(t *testing.T) {
	t.Parallel()
	s := NewService(simclock.New(simclock.Epoch))
	sitekey, secret := s.RegisterSite()
	token, _ := s.Issue(sitekey)
	s.Verify(secret, token)
	if s.Verify(secret, token) {
		t.Fatal("token must be single-use")
	}
}

func TestTokenExpiry(t *testing.T) {
	t.Parallel()
	clock := simclock.New(simclock.Epoch)
	s := NewService(clock)
	sitekey, secret := s.RegisterSite()
	token, _ := s.Issue(sitekey)
	clock.Advance(TokenTTL + time.Second)
	if s.Verify(secret, token) {
		t.Fatal("expired token must fail")
	}
}

func TestWrongSecretFails(t *testing.T) {
	t.Parallel()
	s := NewService(nil)
	sitekey, _ := s.RegisterSite()
	_, otherSecret := s.RegisterSite()
	token, _ := s.Issue(sitekey)
	if s.Verify(otherSecret, token) {
		t.Fatal("token must be bound to its site's secret")
	}
}

func TestUnknownSitekeyCannotIssue(t *testing.T) {
	t.Parallel()
	s := NewService(nil)
	if _, err := s.Issue("nope"); err == nil {
		t.Fatal("unknown sitekey should not issue tokens")
	}
}

func TestGarbageTokenFails(t *testing.T) {
	t.Parallel()
	s := NewService(nil)
	_, secret := s.RegisterSite()
	if s.Verify(secret, "03A-forged-999") {
		t.Fatal("forged token must fail")
	}
}

func TestHTTPAPIEndToEnd(t *testing.T) {
	t.Parallel()
	clock := simclock.New(simclock.Epoch)
	svc := NewService(clock)
	sitekey, secret := svc.RegisterSite()

	net := simnet.New(nil)
	net.Register("captcha-svc.example", svc.Handler())
	client := simnet.NewClient(net, "198.51.100.1")

	// Human side: complete the challenge.
	resp, err := client.Get("http://captcha-svc.example/issue?sitekey=" + sitekey)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	n, _ := resp.Body.Read(buf)
	resp.Body.Close()
	token := strings.TrimSpace(string(buf[:n]))
	if token == "" {
		t.Fatal("no token issued over HTTP")
	}

	// Server side: verify via the HTTP client wrapper.
	c := &Client{HTTP: client, BaseURL: "http://captcha-svc.example", Secret: secret}
	if !c.Verify(token) {
		t.Fatal("HTTP siteverify should succeed for a fresh token")
	}
	if c.Verify(token) {
		t.Fatal("HTTP siteverify must consume the token")
	}
}

func TestHTTPIssueBadSitekey(t *testing.T) {
	t.Parallel()
	svc := NewService(nil)
	net := simnet.New(nil)
	net.Register("captcha-svc.example", svc.Handler())
	client := simnet.NewClient(net, "198.51.100.1")
	resp, err := client.Get("http://captcha-svc.example/issue?sitekey=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("issue with bad sitekey = %d, want 400", resp.StatusCode)
	}
}

func TestWidgetHTMLShape(t *testing.T) {
	t.Parallel()
	html := WidgetHTML("captcha-svc.example", "6Lsim-000001", "capback")
	for _, want := range []string{"g-recaptcha", "data-sitekey", "6Lsim-000001", "data-callback", "capback", "http://captcha-svc.example/issue"} {
		if !strings.Contains(html, want) {
			t.Fatalf("widget missing %q: %s", want, html)
		}
	}
}

func TestStats(t *testing.T) {
	t.Parallel()
	s := NewService(nil)
	sitekey, secret := s.RegisterSite()
	tok, _ := s.Issue(sitekey)
	s.Verify(secret, tok)
	s.Verify(secret, "junk")
	issued, checks := s.Stats()
	if issued != 1 || checks != 2 {
		t.Fatalf("Stats = %d,%d; want 1,2", issued, checks)
	}
}

func TestExpiredTokenSweep(t *testing.T) {
	t.Parallel()
	clock := simclock.New(simclock.Epoch)
	s := NewService(clock)
	sitekey, secret := s.RegisterSite()
	// Mint several sweep windows' worth of tokens, advancing the clock so
	// each window's tokens are expired by the time the next sweep runs.
	for i := 0; i < 4*sweepEvery; i++ {
		if _, err := s.Issue(sitekey); err != nil {
			t.Fatal(err)
		}
		if i%64 == 0 {
			clock.Advance(TokenTTL + time.Second)
		}
	}
	s.mu.Lock()
	retained := len(s.tokens)
	s.mu.Unlock()
	if retained > 2*sweepEvery {
		t.Fatalf("token table retains %d entries after sweeps, want <= %d", retained, 2*sweepEvery)
	}
	// Sweeping must not disturb live-token semantics.
	token, _ := s.Issue(sitekey)
	if !s.Verify(secret, token) {
		t.Fatal("fresh token should verify after sweeps")
	}
}
