// Quickstart, in two acts.
//
// Act 1 runs the paper's whole study through the public API —
// areyouhuman.Run(ctx, opts...) — and prints the headline claims: 8 of 105
// protected URLs detected, and not a single reCAPTCHA-protected URL ever
// blacklisted. Ctrl-C cancels the simulation cleanly mid-study.
//
// Act 2 drops to the low-level world API to show *why*: deploy one
// reCAPTCHA-protected phishing site, report it to Google Safe Browsing, and
// watch the core finding play out — the bot never reaches the payload and
// the URL is never blacklisted, while a human solves the checkbox and lands
// straight on the fake login page at the very same URL.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"areyouhuman"
	"areyouhuman/internal/browser"
	"areyouhuman/internal/engines"
	"areyouhuman/internal/evasion"
	"areyouhuman/internal/experiment"
	"areyouhuman/internal/phishkit"
)

func main() {
	// Act 1 — the full study through the public facade. The traffic scale
	// keeps the crawler fleets small enough to finish in seconds; drop the
	// option for the paper-calibrated volumes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	res, err := areyouhuman.Run(ctx, areyouhuman.WithTrafficScale(0.002))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("headline claims (paper vs this run):")
	for _, c := range res.Results.Claims() {
		status := "HOLDS"
		if !c.Holds {
			status = "DIFFERS"
		}
		fmt.Printf("  %-38s paper %-8s measured %-8s %s\n", c.Name, c.Paper, c.Measured, status)
	}

	// Act 2 — one URL, up close, on the low-level world API.
	world := experiment.NewWorld(experiment.Config{TrafficScale: 0.01})
	defer world.Close()

	// Register a domain, generate its 30-page cover website, and mount a
	// PayPal kit behind the reCAPTCHA gate.
	deployment, err := world.Deploy("garden-craft-tips.com", experiment.MountSpec{
		Brand:     phishkit.PayPal,
		Technique: evasion.Recaptcha,
	})
	if err != nil {
		log.Fatal(err)
	}
	url := deployment.Mounts[0].URL
	fmt.Println("\nphishing URL:", url)

	// Report it to Google Safe Browsing and let 48 virtual hours pass.
	if err := world.ReportTo(deployment, engines.GSB); err != nil {
		log.Fatal(err)
	}
	world.Sched.RunFor(48 * time.Hour)

	gsb := world.Engines[engines.GSB]
	fmt.Printf("GSB blacklisted the URL: %v\n", gsb.List.Contains(url))
	fmt.Printf("payload ever served to a bot: %d times\n", len(deployment.Log.PayloadServes()))
	fmt.Printf("host saw %d requests from %d unique crawler IPs\n",
		deployment.Log.Requests(), deployment.Log.UniqueIPs())

	// Now a human visits: scripts on, dialogs answered, CAPTCHA solvable.
	human := browser.New(world.Net, browser.Config{
		ExecuteScripts:  true,
		AlertPolicy:     browser.AlertConfirm,
		TimerBudget:     time.Hour,
		CanSolveCAPTCHA: true,
	})
	page, err := human.Open(url)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("human lands on: %q (URL unchanged: %v)\n",
		page.Title(), "https://"+page.URL.Host+page.URL.Path == url)
}
