// Quickstart: deploy one reCAPTCHA-protected phishing site, report it to
// Google Safe Browsing, and watch the paper's core finding play out — the
// bot never reaches the payload and the URL is never blacklisted, while a
// human solves the checkbox and lands straight on the fake login page at the
// very same URL.
package main

import (
	"fmt"
	"log"
	"time"

	"areyouhuman/internal/browser"
	"areyouhuman/internal/engines"
	"areyouhuman/internal/evasion"
	"areyouhuman/internal/experiment"
	"areyouhuman/internal/phishkit"
)

func main() {
	// A fresh simulated internet: DNS, WHOIS, registrar, CA, the reCAPTCHA
	// service, and all seven anti-phishing engines.
	world := experiment.NewWorld(experiment.Config{TrafficScale: 0.01})

	// Register a domain, generate its 30-page cover website, and mount a
	// PayPal kit behind the reCAPTCHA gate.
	deployment, err := world.Deploy("garden-craft-tips.com", experiment.MountSpec{
		Brand:     phishkit.PayPal,
		Technique: evasion.Recaptcha,
	})
	if err != nil {
		log.Fatal(err)
	}
	url := deployment.Mounts[0].URL
	fmt.Println("phishing URL:", url)

	// Report it to Google Safe Browsing and let 48 virtual hours pass.
	if err := world.ReportTo(deployment, engines.GSB); err != nil {
		log.Fatal(err)
	}
	world.Sched.RunFor(48 * time.Hour)

	gsb := world.Engines[engines.GSB]
	fmt.Printf("GSB blacklisted the URL: %v\n", gsb.List.Contains(url))
	fmt.Printf("payload ever served to a bot: %d times\n", len(deployment.Log.PayloadServes()))
	fmt.Printf("host saw %d requests from %d unique crawler IPs\n",
		deployment.Log.Requests(), deployment.Log.UniqueIPs())

	// Now a human visits: scripts on, dialogs answered, CAPTCHA solvable.
	human := browser.New(world.Net, browser.Config{
		ExecuteScripts:  true,
		AlertPolicy:     browser.AlertConfirm,
		TimerBudget:     time.Hour,
		CanSolveCAPTCHA: true,
	})
	page, err := human.Open(url)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("human lands on: %q (URL unchanged: %v)\n",
		page.Title(), "https://"+page.URL.Host+page.URL.Path == url)
}
