// takedown_lifecycle plays out the enforcement path the paper's researchers
// deliberately short-circuited (they owned the hosting and ignored the abuse
// mails): a phishing URL is reported to OpenPhish, PhishLabs notifies the
// hosting provider's abuse desk, and after the provider's grace period the
// host goes dark — at which point neither victims nor crawlers can reach it.
//
// Run it twice in your head: for a naked kit the blacklist usually wins the
// race; for a reCAPTCHA-protected kit the *takedown is the only thing that
// ever stops it*, because no blacklist entry ever appears.
package main

import (
	"fmt"
	"log"
	"time"

	"areyouhuman/internal/browser"
	"areyouhuman/internal/engines"
	"areyouhuman/internal/evasion"
	"areyouhuman/internal/experiment"
	"areyouhuman/internal/hosting"
	"areyouhuman/internal/phishkit"
)

func main() {
	for _, tech := range []evasion.Technique{evasion.None, evasion.Recaptcha} {
		runScenario(tech)
		fmt.Println()
	}
}

func runScenario(tech evasion.Technique) {
	world := experiment.NewWorld(experiment.Config{TrafficScale: 0.005})
	d, err := world.Deploy("lifecycle-demo.com", experiment.MountSpec{
		Brand: phishkit.PayPal, Technique: tech,
	})
	if err != nil {
		log.Fatal(err)
	}
	url := d.Mounts[0].URL

	// The hosting provider actually processes complaints here.
	desk := &hosting.AbuseDesk{
		Net:     world.Net,
		Mail:    world.Mail,
		Sched:   world.Sched,
		Address: experiment.AbuseContact,
		Grace:   12 * time.Hour,
	}
	horizon := world.Clock.Now().Add(72 * time.Hour)
	desk.Start(horizon)

	if err := world.ReportTo(d, engines.OpenPhish); err != nil {
		log.Fatal(err)
	}
	world.Sched.RunFor(72 * time.Hour)

	fmt.Printf("technique: %s\n", tech)
	op := world.Engines[engines.OpenPhish]
	if entry, listed := op.List.Lookup(url); listed {
		fmt.Printf("  blacklisted by OpenPhish after %.0f min\n", entry.AddedAt.Sub(d.ReportedAt).Minutes())
	} else {
		fmt.Println("  never blacklisted (the evasion held)")
	}
	for _, td := range desk.Takedowns() {
		fmt.Printf("  host %s taken down %.0f h after the abuse notification\n",
			td.Host, td.DownAt.Sub(td.NotifiedAt).Hours())
	}

	human := browser.New(world.Net, browser.Config{
		ExecuteScripts: true, AlertPolicy: browser.AlertConfirm,
		TimerBudget: time.Hour, CanSolveCAPTCHA: true,
	})
	if _, err := human.Open(url); err != nil {
		fmt.Printf("  a victim arriving now gets: %v\n", err)
	} else {
		fmt.Println("  a victim arriving now still reaches the site")
	}
}
