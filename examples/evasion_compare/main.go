// evasion_compare deploys the same PayPal kit behind every technique — no
// protection, web cloaking (the Oest et al. baseline), the alert box, the
// session flow, and reCAPTCHA — reports each URL to every main-experiment
// engine, and prints the detection matrix. It is Table 2 in miniature, with
// the baselines the paper compares against included.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"areyouhuman/internal/engines"
	"areyouhuman/internal/evasion"
	"areyouhuman/internal/experiment"
	"areyouhuman/internal/phishkit"
)

func main() {
	techniques := []evasion.Technique{
		evasion.None, evasion.Cloaking, evasion.AlertBox, evasion.SessionBased, evasion.Recaptcha,
	}
	keys := engines.MainExperimentKeys()

	world := experiment.NewWorld(experiment.Config{TrafficScale: 0.005})

	// The cloaking deployments block the engines' published crawler ranges.
	var botIPs []string
	for _, p := range engines.Profiles() {
		botIPs = append(botIPs, p.IPPrefix)
	}
	sort.Strings(botIPs)

	type key struct {
		tech   evasion.Technique
		engine string
	}
	urls := make(map[key]string)
	n := 0
	for _, tech := range techniques {
		for _, engineKey := range keys {
			domain := fmt.Sprintf("compare-%s-%d.com", tech, n)
			n++
			spec := experiment.MountSpec{Brand: phishkit.PayPal, Technique: tech}
			if tech == evasion.Cloaking {
				spec.BotIPs = botIPs
			}
			d, err := world.Deploy(domain, spec)
			if err != nil {
				log.Fatal(err)
			}
			if err := world.ReportTo(d, engineKey); err != nil {
				log.Fatal(err)
			}
			urls[key{tech, engineKey}] = d.Mounts[0].URL
		}
	}

	world.Sched.RunFor(48 * time.Hour)

	fmt.Printf("%-12s", "technique")
	for _, engineKey := range keys {
		fmt.Printf(" %-12s", engineKey)
	}
	fmt.Println()
	for _, tech := range techniques {
		fmt.Printf("%-12s", tech)
		for _, engineKey := range keys {
			mark := "miss"
			if world.Engines[engineKey].List.Contains(urls[key{tech, engineKey}]) {
				mark = "LISTED"
			}
			fmt.Printf(" %-12s", mark)
		}
		fmt.Println()
	}
	fmt.Println("\nReading: naked kits are caught broadly; cloaking stops spoofable checks only;")
	fmt.Println("the alert box stops everyone but GSB; sessions stop everyone but (sometimes) NetCraft;")
	fmt.Println("reCAPTCHA stops every engine.")
}
