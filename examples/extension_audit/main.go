// extension_audit reruns the Section 5 client-side study through the public
// areyouhuman.Run API: the six most popular anti-phishing extensions, nine
// CAPTCHA/alert/session-protected URLs, three human visits each — and prints
// Table 3 plus a sample of the telemetry each extension shipped to its vendor
// (the paper's Burp-proxy view), showing who sends naked URLs with parameters
// and who hashes.
package main

import (
	"context"
	"fmt"
	"log"

	"areyouhuman"
	"areyouhuman/internal/blacklist"
	"areyouhuman/internal/experiment"
	"areyouhuman/internal/extensions"
	"areyouhuman/internal/simclock"
)

func main() {
	res, err := areyouhuman.Run(context.Background(),
		areyouhuman.WithTrafficScale(0.005))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table 3 — client-side extensions")
	fmt.Print(experiment.RenderTable3(res.Results.Table3))

	// Show what the telemetry actually looks like on the wire.
	fmt.Println("\nSample telemetry (what a proxy sees):")
	clock := simclock.New(simclock.Epoch)
	visited := "https://garden-craft-tips.com/wp-content/secure/login.php?sid=abc123&next=account"
	for _, spec := range extensions.Catalog() {
		ext := extensions.Build(spec, clock, nil)
		ext.OnNavigate(visited, nil)
		t := ext.TelemetryLog()[0]
		mode := "plain"
		if t.Hashed {
			mode = "hashed"
		}
		fmt.Printf("  %-28s [%s] %s\n", spec.Name, mode, t.Payload)
	}

	// And why even a solved CAPTCHA does not help them: verdicts come from
	// the vendor blacklist keyed by URL, never from page content.
	fmt.Println("\nEven after the user solves the CAPTCHA the extension only rechecks the URL;")
	fmt.Printf("an unlisted URL stays 'safe': %v\n", func() bool {
		ext := extensions.Build(extensions.Catalog()[0], clock, nil)
		return !ext.OnNavigate(visited, nil)
	}())
	_ = blacklist.MaxCacheTTL // see BenchmarkAblationNoVerdictCache for the caching window
}
