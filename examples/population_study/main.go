// population_study runs the heterogeneous-victim exposure study through the
// public areyouhuman.Run API: the lain2025 preset (a careful minority that
// inspects URLs, a large average middle, a careless tail — cohort shares per
// Lain et al., arXiv:2502.20234) visits evasion-protected lures, and the
// per-cohort × per-technique table shows who the blacklists protect and who
// is left to their own URL-reading skill. It then demonstrates the two error
// surfaces a caller should handle: unknown presets and invalid cohort specs.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"areyouhuman"
)

func main() {
	spec, err := areyouhuman.Population("lain2025")
	if err != nil {
		log.Fatal(err)
	}
	spec.Size = 20_000

	res, err := areyouhuman.Run(context.Background(),
		areyouhuman.WithPopulation(spec),
		areyouhuman.WithShardWorkers(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report())

	// The community-verification rows are the paper's Section 5.1 story:
	// confirmable arms get published, human-verification arms starve.
	for _, row := range res.Population.Community {
		if row.Published == 0 && row.Reports > 0 {
			fmt.Printf("\n%s: %d community reports and still unverified — the gate starves the voters\n",
				row.Technique, row.Reports)
		}
	}

	// Typed errors: presets and specs fail loudly, not with a zero table.
	if _, err := areyouhuman.Population("crowd"); errors.Is(err, areyouhuman.ErrPopulationPreset) {
		fmt.Printf("\nunknown preset is typed: %v\n", err)
	}
	bad := areyouhuman.PopulationSpec{
		Name:    "lopsided",
		Size:    1000,
		Cohorts: []areyouhuman.PopulationCohort{{Name: "only", Share: 0.4}},
	}
	var perr *areyouhuman.PopulationError
	if _, err := areyouhuman.Run(context.Background(), areyouhuman.WithPopulation(bad)); errors.As(err, &perr) {
		fmt.Printf("invalid spec is typed: %v\n", perr)
	}
}
