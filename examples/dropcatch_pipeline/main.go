// dropcatch_pipeline demonstrates the paper's six-step domain-selection
// method (Section 3) twice: once against live simulated infrastructure
// (DNS, two registrar APIs, WHOIS, a multi-engine scanner, a web archive,
// and a search index), and once at the paper's full 1M-domain scale,
// reproducing the exact funnel 1,000,000 -> 770 -> 251 -> 244 -> 244 -> 50.
package main

import (
	"fmt"
	"log"
	"time"

	"areyouhuman/internal/dropcatch"
	"areyouhuman/internal/experiment"
)

func main() {
	// Live pipeline over real simulated services.
	world := experiment.NewWorld(experiment.Config{TrafficScale: 0.005})
	selected, funnel, err := world.DropCatchDomains(50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("live pipeline funnel: %s\n", funnel)
	fmt.Println("first selected drop-catch domains:")
	for _, d := range selected[:5] {
		fmt.Printf("  %s (archived=%v, expired=%v)\n", d, true, true)
	}

	// Paper-scale synthetic population: 1M candidate names, compact sets.
	start := time.Now()
	w, err := dropcatch.NewWorld(dropcatch.PaperConfig())
	if err != nil {
		log.Fatal(err)
	}
	chosen, paperFunnel := dropcatch.Run(w.Top, w.Services(), 50)
	fmt.Printf("\npaper-scale funnel:  %s  (in %v)\n", paperFunnel, time.Since(start).Round(time.Millisecond))
	fmt.Printf("yielding %d reputed, previously used domains, e.g. %s, %s\n",
		len(chosen), chosen[0], chosen[1])
}
