package areyouhuman

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// TestRunMatchesFramework pins the facade conversion: Run(ctx,
// WithConfig(cfg)) produces byte-for-byte the report a framework built from
// the same facade Config produces, so the Config-to-internal mapping loses
// nothing.
func TestRunMatchesFramework(t *testing.T) {
	t.Parallel()
	cfg := Config{TrafficScale: 0.002}
	old, err := NewFramework(cfg).RunAll()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if res.Results == nil || res.Replicas != nil {
		t.Fatalf("single run filled the wrong StudyResult arm: %+v", res)
	}
	if got, want := res.Report(), old.Report(); got != want {
		t.Errorf("Run and Framework reports diverge:\n--- Run ---\n%s\n--- Framework ---\n%s", got, want)
	}
}

// TestRunOptionsCompose checks later options override earlier ones and the
// option order WithConfig-then-specific works as documented.
func TestRunOptionsCompose(t *testing.T) {
	t.Parallel()
	var o runOptions
	for _, opt := range []Option{
		WithConfig(Config{TrafficScale: 0.5, Seed: 1}),
		WithSeed(42),
		WithTrafficScale(0.002),
		WithReplicas(3),
		WithParallelism(2),
	} {
		if err := opt(&o); err != nil {
			t.Fatal(err)
		}
	}
	if o.cfg.Seed != 42 || o.cfg.TrafficScale != 0.002 || o.replicas != 3 || o.parallel != 2 {
		t.Fatalf("options composed wrong: %+v", o)
	}
}

// TestInternalConfigCarriesEveryKnob guards the facade-to-internal
// conversion: every public Config field must land on the experiment config.
func TestInternalConfigCarriesEveryKnob(t *testing.T) {
	t.Parallel()
	cfg := Config{Seed: 7, TrafficScale: 0.25, MainTrafficPerReport: 50, NoCache: true, ShardWorkers: 3}
	got := cfg.internal()
	if got.Seed != 7 || got.TrafficScale != 0.25 || got.MainTrafficPerReport != 50 ||
		!got.NoCache || got.ShardWorkers != 3 {
		t.Fatalf("internal() dropped a field: %+v", got)
	}
}

// TestRunWithReplicas drives the replica path through the facade.
func TestRunWithReplicas(t *testing.T) {
	t.Parallel()
	res, err := Run(context.Background(),
		WithTrafficScale(0.002), WithReplicas(2), WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Replicas == nil || res.Results != nil {
		t.Fatalf("replica run filled the wrong StudyResult arm: %+v", res)
	}
	if got := len(res.Replicas.Runs); got != 2 {
		t.Fatalf("replica runs = %d, want 2", got)
	}
	if !strings.Contains(res.Report(), "Aggregate over 2 replicas") {
		t.Errorf("replica report missing aggregate header:\n%s", res.Report())
	}
}

// TestRunCancelled: a cancelled context stops the study promptly with the
// context error for both the single-run and replica paths.
func TestRunCancelled(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, WithTrafficScale(0.002)); !errors.Is(err, context.Canceled) {
		t.Errorf("single run under cancelled ctx = %v, want context.Canceled", err)
	}
	if _, err := Run(ctx, WithTrafficScale(0.002), WithReplicas(2)); !errors.Is(err, context.Canceled) {
		t.Errorf("replica run under cancelled ctx = %v, want context.Canceled", err)
	}
}

// TestRunChaosOptions: a bad preset fails fast; a valid preset plan threads
// through to the configuration; an invalid explicit plan is rejected at
// option time.
func TestRunChaosOptions(t *testing.T) {
	t.Parallel()
	if _, err := Run(context.Background(), WithChaosPreset("earthquake")); !errors.Is(err, ErrUnknownPreset) {
		t.Errorf("unknown preset err = %v, want ErrUnknownPreset", err)
	}
	var o runOptions
	if err := WithChaosPreset("flaky")(&o); err != nil {
		t.Fatal(err)
	}
	if o.chaos == nil || o.chaos.Name != "flaky" {
		t.Fatalf("preset plan = %+v", o.chaos)
	}
	bad := &ChaosPlan{Faults: nil}
	bad.Faults = append(bad.Faults, o.chaos.Faults[0], o.chaos.Faults[0]) // duplicate names
	if err := WithChaosPlan(bad)(&o); err == nil {
		t.Error("invalid plan passed validation at option time")
	}
}

// TestRunWithPopulation drives the population study through the facade and
// checks the dedicated StudyResult arm plus the deterministic report.
func TestRunWithPopulation(t *testing.T) {
	t.Parallel()
	spec, err := Population("lain2025")
	if err != nil {
		t.Fatal(err)
	}
	spec.Size = 2000
	res, err := Run(context.Background(), WithPopulation(spec), WithShardWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Population == nil || res.Results != nil || res.Campaign != nil || res.Replicas != nil {
		t.Fatalf("population run filled the wrong StudyResult arm: %+v", res)
	}
	report := res.Report()
	if !strings.Contains(report, `Population "lain2025": 2000 victims`) {
		t.Errorf("report missing population header:\n%s", report)
	}
	if !strings.Contains(report, "Community verification:") {
		t.Errorf("report missing community section:\n%s", report)
	}
}

// TestRunPopulationTrafficScaleCompat covers the compat shim: a zero spec
// synthesizes the uniform population sized by TrafficScale, reproducing the
// legacy homogeneous stream.
func TestRunPopulationTrafficScaleCompat(t *testing.T) {
	t.Parallel()
	res, err := Run(context.Background(),
		WithTrafficScale(0.05), WithPopulation(PopulationSpec{}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Population == nil {
		t.Fatal("compat run produced no population results")
	}
	if got := res.Population.Spec; got.Name != "uniform" || got.Size != 500 || len(got.Cohorts) != 1 {
		t.Fatalf("compat spec = %+v, want uniform preset sized 0.05*10000", got)
	}
}

// TestRunPopulationErrors covers the typed population failures: bad
// composition, unknown preset, invalid spec.
func TestRunPopulationErrors(t *testing.T) {
	t.Parallel()
	ctx := context.Background()

	var perr *PopulationError
	if _, err := Run(ctx, WithPopulationPreset("paper"), WithReplicas(2)); !errors.As(err, &perr) {
		t.Errorf("population+replicas err = %v, want *PopulationError", err)
	}
	if _, err := Run(ctx, WithPopulationPreset("paper"), WithCampaign(100)); !errors.As(err, &perr) {
		t.Errorf("population+campaign err = %v, want *PopulationError", err)
	}
	if _, err := Run(ctx, WithPopulationPreset("crowd")); !errors.Is(err, ErrPopulationPreset) {
		t.Errorf("unknown preset err = %v, want ErrPopulationPreset", err)
	}

	bad := PopulationSpec{Size: 10, Cohorts: []PopulationCohort{{Name: "x", Share: 0.4, VisitsPerDay: 1}}}
	_, err := Run(ctx, WithPopulation(bad))
	if !errors.As(err, &perr) || !errors.Is(err, ErrPopulationSpec) {
		t.Errorf("invalid spec err = %v, want *PopulationError wrapping ErrPopulationSpec", err)
	}
}

// TestTypedOptionErrors pins the errors.As surface of the validating
// options.
func TestTypedOptionErrors(t *testing.T) {
	t.Parallel()
	var o runOptions

	var swe *ShardWorkersError
	if err := WithShardWorkers(-1)(&o); !errors.As(err, &swe) || swe.N != -1 {
		t.Errorf("WithShardWorkers(-1) err = %v, want *ShardWorkersError{N: -1}", err)
	}
	if err := WithShardWorkers(0)(&o); err != nil {
		t.Errorf("WithShardWorkers(0) err = %v, want nil (classic scheduler)", err)
	}

	var cse *CampaignSizeError
	err := WithCampaign(0)(&o)
	if !errors.As(err, &cse) || cse.N != 0 || !errors.Is(err, ErrCampaignSize) {
		t.Errorf("WithCampaign(0) err = %v, want *CampaignSizeError wrapping ErrCampaignSize", err)
	}
}
