package areyouhuman

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// TestRunMatchesRunStudy pins the facade redesign's compatibility promise:
// Run(ctx, WithConfig(cfg)) produces byte-for-byte the report the deprecated
// RunStudy(cfg) produces.
func TestRunMatchesRunStudy(t *testing.T) {
	t.Parallel()
	cfg := Config{TrafficScale: 0.002}
	old, err := RunStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if res.Results == nil || res.Replicas != nil {
		t.Fatalf("single run filled the wrong StudyResult arm: %+v", res)
	}
	if got, want := res.Report(), old.Report(); got != want {
		t.Errorf("Run and RunStudy reports diverge:\n--- Run ---\n%s\n--- RunStudy ---\n%s", got, want)
	}
}

// TestRunOptionsCompose checks later options override earlier ones and the
// option order WithConfig-then-specific works as documented.
func TestRunOptionsCompose(t *testing.T) {
	t.Parallel()
	var o runOptions
	for _, opt := range []Option{
		WithConfig(Config{TrafficScale: 0.5, Seed: 1}),
		WithSeed(42),
		WithTrafficScale(0.002),
		WithReplicas(3),
		WithParallelism(2),
	} {
		if err := opt(&o); err != nil {
			t.Fatal(err)
		}
	}
	if o.cfg.Seed != 42 || o.cfg.TrafficScale != 0.002 || o.replicas != 3 || o.parallel != 2 {
		t.Fatalf("options composed wrong: %+v", o)
	}
}

// TestRunWithReplicas drives the replica path through the facade.
func TestRunWithReplicas(t *testing.T) {
	t.Parallel()
	res, err := Run(context.Background(),
		WithTrafficScale(0.002), WithReplicas(2), WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Replicas == nil || res.Results != nil {
		t.Fatalf("replica run filled the wrong StudyResult arm: %+v", res)
	}
	if got := len(res.Replicas.Runs); got != 2 {
		t.Fatalf("replica runs = %d, want 2", got)
	}
	if !strings.Contains(res.Report(), "Aggregate over 2 replicas") {
		t.Errorf("replica report missing aggregate header:\n%s", res.Report())
	}
}

// TestRunCancelled: a cancelled context stops the study promptly with the
// context error for both the single-run and replica paths.
func TestRunCancelled(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, WithTrafficScale(0.002)); !errors.Is(err, context.Canceled) {
		t.Errorf("single run under cancelled ctx = %v, want context.Canceled", err)
	}
	if _, err := Run(ctx, WithTrafficScale(0.002), WithReplicas(2)); !errors.Is(err, context.Canceled) {
		t.Errorf("replica run under cancelled ctx = %v, want context.Canceled", err)
	}
}

// TestRunChaosOptions: a bad preset fails fast; a valid preset plan threads
// through to the configuration; an invalid explicit plan is rejected at
// option time.
func TestRunChaosOptions(t *testing.T) {
	t.Parallel()
	if _, err := Run(context.Background(), WithChaosPreset("earthquake")); !errors.Is(err, ErrUnknownPreset) {
		t.Errorf("unknown preset err = %v, want ErrUnknownPreset", err)
	}
	var o runOptions
	if err := WithChaosPreset("flaky")(&o); err != nil {
		t.Fatal(err)
	}
	if o.cfg.Chaos == nil || o.cfg.Chaos.Name != "flaky" {
		t.Fatalf("preset plan = %+v", o.cfg.Chaos)
	}
	bad := &ChaosPlan{Faults: nil}
	bad.Faults = append(bad.Faults, o.cfg.Chaos.Faults[0], o.cfg.Chaos.Faults[0]) // duplicate names
	if err := WithChaosPlan(bad)(&o); err == nil {
		t.Error("invalid plan passed validation at option time")
	}
}
