// Package areyouhuman reproduces the measurement study "Are You Human?
// Resilience of Phishing Detection to Evasion Techniques Based on Human
// Verification" (Maroofi, Korczyński, Duda — ACM IMC 2020) as a runnable
// simulation.
//
// The paper deploys 105 harmless phishing websites, protects each with one
// of three human-verification evasion techniques — a JavaScript alert box, a
// session-based multi-page flow, or Google reCAPTCHA — reports every URL to
// a major anti-phishing entity, and watches the blacklists. This module
// rebuilds that entire world in-process: a virtual internet, DNS, WHOIS,
// registrars, a certificate authority, a reCAPTCHA service, a fake-website
// generator, the three phishing kits, browser emulation with a real (small)
// JavaScript interpreter, the seven server-side engines with calibrated
// capability profiles, and the six client-side extensions — and re-runs the
// paper's three experiments on a virtual clock.
//
// Quick start:
//
//	res, err := areyouhuman.Run(context.Background())
//	if err != nil { ... }
//	fmt.Print(res.Report())
//
// The defaults reproduce the paper's Tables 1–3 and headline numbers: 8 of
// 105 protected URLs detected, GSB alone bypassing the alert box (average
// ≈132 minutes), NetCraft alone bypassing session pages (2 of 6 confirmed),
// and not a single reCAPTCHA-protected URL detected by anyone.
//
// Options compose the larger studies — seeded replicas, telemetry,
// deterministic fault injection, and heterogeneous victim populations:
//
//	res, err := areyouhuman.Run(ctx,
//		areyouhuman.WithSeed(42),
//		areyouhuman.WithReplicas(8),
//		areyouhuman.WithChaosPreset("flaky"))
//
// Victim traffic is described by a population: cohorts of victims with
// distinct URL-inspection skill, susceptibility, reporting propensity, and
// visit cadence (see internal/population and the presets "uniform", "paper",
// "lain2025"). WithPopulation runs the exposure side of the study against
// such a population at any scale — victims derive positionally from the
// seed, so a million-victim study holds no per-victim state:
//
//	spec, _ := areyouhuman.Population("lain2025")
//	spec.Size = 1_000_000
//	res, err := areyouhuman.Run(ctx, areyouhuman.WithPopulation(spec))
//	fmt.Print(res.Report())
//
// The legacy TrafficScale knob remains as a compat shim: a zero-valued
// PopulationSpec synthesizes the uniform population it used to scale.
package areyouhuman

import (
	"context"
	"fmt"
	"io"

	"areyouhuman/internal/campaign"
	"areyouhuman/internal/chaos"
	"areyouhuman/internal/core"
	"areyouhuman/internal/dropcatch"
	"areyouhuman/internal/experiment"
	"areyouhuman/internal/journal"
	"areyouhuman/internal/population"
	"areyouhuman/internal/telemetry"
)

// Config parameterises a study run. The zero value reproduces the paper.
//
// Config is a facade type, deliberately not an alias of the internal
// experiment configuration: internal fields (observers, stage hooks,
// scheduler plumbing) can evolve without breaking this surface. Observers
// attach through options instead — WithTelemetry, WithJournal,
// WithChaosPlan/WithChaosPreset.
type Config struct {
	// Seed drives every stochastic choice (0 selects the paper-calibrated
	// default). Under WithReplicas it is the master seed.
	Seed int64
	// TrafficScale scales the engines' crawler-fleet volumes (0 selects 1.0,
	// the Table 1 calibration; tests use small values for speed). It also
	// sizes the compat population a zero PopulationSpec synthesizes.
	TrafficScale float64
	// MainTrafficPerReport is the fleet volume per URL in the main
	// experiment (0 selects the default 200).
	MainTrafficPerReport int
	// NoCache disables the semantics-preserving visit-path caches; results
	// are identical either way, only slower.
	NoCache bool
	// ShardWorkers selects the scheduler: 0 the classic serial scheduler,
	// n >= 1 the sharded scheduler with n workers (byte-identical output for
	// every n >= 1). Set it through WithShardWorkers to get validation.
	ShardWorkers int
}

// internal converts the facade configuration to the experiment package's.
// This is the only place the two structs meet; observers (telemetry,
// journal, chaos) are threaded separately by runOptions.
func (c Config) internal() experiment.Config {
	return experiment.Config{
		Seed:                 c.Seed,
		TrafficScale:         c.TrafficScale,
		MainTrafficPerReport: c.MainTrafficPerReport,
		NoCache:              c.NoCache,
		ShardWorkers:         c.ShardWorkers,
	}
}

// Framework orchestrates the three experiments; see internal/core.
type Framework = core.Framework

// Results aggregates the three experiments' outputs.
type Results = core.Results

// Claim is one headline paper-vs-measured comparison.
type Claim = core.Claim

// Table1Row is one row of the preliminary test's Table 1.
type Table1Row = experiment.Table1Row

// MainResults carries Table 2 plus timing statistics.
type MainResults = experiment.MainResults

// Table3Row is one row of the client-side extension Table 3.
type Table3Row = experiment.Table3Row

// Funnel is the drop-catch selection funnel (Section 3).
type Funnel = dropcatch.Funnel

// CampaignConfig sizes a paper-scale streaming campaign study; see
// internal/campaign for the defaults and the constant-memory contract.
type CampaignConfig = campaign.Config

// CampaignResults is a campaign study's aggregated output.
type CampaignResults = campaign.Results

// PopulationSpec describes a heterogeneous victim population: a victim
// count partitioned into cohorts. See internal/population for the
// determinism contract (victims derive positionally from the seed; memory
// is flat in the population size).
type PopulationSpec = population.Spec

// PopulationCohort is one victim segment: its share of the population and
// its URL-inspection skill, susceptibility, reporting propensity, and visit
// cadence (rates after Lain et al., arXiv:2502.20234).
type PopulationCohort = population.Cohort

// PopulationResults is a completed population study: per-(cohort,
// technique) outcome cells plus the community-verification summary.
type PopulationResults = population.Results

// ChaosPlan is a declarative fault-injection plan; see internal/chaos for
// the fault kinds and the determinism contract.
type ChaosPlan = chaos.Plan

// ReplicaSet is the outcome of a multi-replica run: one full study per
// replica plus cross-replica aggregation.
type ReplicaSet = core.ReplicaSet

// Population returns a built-in population spec by name: "uniform" (the
// legacy homogeneous stream), "paper" (the IMC 2020 study's implicit
// spam-campaign audience), or "lain2025" (the enterprise cohorts of Lain et
// al.). The returned spec's Size is zero; set it or let the default apply.
// Unknown names report ErrPopulationPreset.
func Population(name string) (PopulationSpec, error) {
	spec, err := population.Preset(name)
	if err != nil {
		return PopulationSpec{}, fmt.Errorf("areyouhuman: %w", err)
	}
	return spec, nil
}

// PopulationPresets lists the built-in population names, sorted.
func PopulationPresets() []string { return population.Presets() }

// Option adjusts a Run.
type Option func(*runOptions) error

// runOptions is the resolved option set. The facade Config carries only the
// plain knobs; observers and study selectors live beside it and are joined
// into the internal configuration by internalConfig.
type runOptions struct {
	cfg        Config
	tel        *telemetry.Set
	journalW   *journal.Writer
	chaos      *ChaosPlan
	population *PopulationSpec
	replicas   int
	parallel   int
	campaign   CampaignConfig
}

// internalConfig assembles the experiment configuration: the facade knobs
// plus the separately-threaded observers.
func (o *runOptions) internalConfig() experiment.Config {
	cfg := o.cfg.internal()
	cfg.Telemetry = o.tel
	cfg.Chaos = o.chaos
	cfg.Journal = o.journalW
	return cfg
}

// WithConfig replaces the whole configuration. Options applied after it
// still take effect; options applied before it are overwritten.
func WithConfig(cfg Config) Option {
	return func(o *runOptions) error { o.cfg = cfg; return nil }
}

// WithSeed sets the experiment seed (the master seed under WithReplicas).
// Zero selects the paper-calibrated default.
func WithSeed(seed int64) Option {
	return func(o *runOptions) error { o.cfg.Seed = seed; return nil }
}

// WithTrafficScale scales the engines' crawler-fleet volumes (1 = the
// Table 1 calibration; tests use small values for speed). For victim
// traffic prefer WithPopulation; this knob remains the compat path.
func WithTrafficScale(scale float64) Option {
	return func(o *runOptions) error { o.cfg.TrafficScale = scale; return nil }
}

// WithPopulation switches the run to a heterogeneous-victim exposure study
// of the given population: victims in cohorts (inspection skill,
// susceptibility, reporting propensity, visit cadence) visit
// evasion-protected lures, their blacklist guards block what got listed, and
// their reports feed community verification — the paper's exposure story at
// any scale. Victims derive positionally from the seed, so memory stays
// flat from 10k to 1M+ victims and results are byte-identical for every
// WithShardWorkers value.
//
// A zero-valued spec selects the TrafficScale compat path: the uniform
// preset sized by the configured TrafficScale, reproducing the legacy
// homogeneous victim stream. Composes with WithSeed, WithJournal,
// WithTelemetry, and WithShardWorkers; it does not compose with
// WithReplicas or WithCampaign. Spec problems surface as *PopulationError.
func WithPopulation(spec PopulationSpec) Option {
	return func(o *runOptions) error { o.population = &spec; return nil }
}

// WithPopulationPreset is WithPopulation with a built-in spec sized at its
// default; unknown names fail at option time with ErrPopulationPreset.
func WithPopulationPreset(name string) Option {
	return func(o *runOptions) error {
		spec, err := population.Preset(name)
		if err != nil {
			return fmt.Errorf("areyouhuman: %w", err)
		}
		o.population = &spec
		return nil
	}
}

// WithTelemetry instruments the run end to end (see telemetry.Set).
// Telemetry observes only; results are identical with or without it.
func WithTelemetry(tel *telemetry.Set) Option {
	return func(o *runOptions) error { o.tel = tel; return nil }
}

// WithJournal streams the run's lifecycle journal — every deploy, report,
// deciding crawl, listing, sighting, and fault injection, virtual-clock
// stamped and causally linked — to w as JSON Lines (see internal/journal).
// Like telemetry it observes only: results are identical with or without it,
// and the journal bytes themselves are bit-identical for a fixed seed
// regardless of -parallel. Wrap w in a bufio.Writer when writing to a file;
// a nil w is a no-op.
func WithJournal(w io.Writer) Option {
	return func(o *runOptions) error { o.journalW = journal.NewWriter(w); return nil }
}

// WithChaosPlan subjects the run to a fault-injection plan. The plan is
// validated here so a malformed plan fails before any world is built.
func WithChaosPlan(plan *ChaosPlan) Option {
	return func(o *runOptions) error {
		if plan != nil {
			if err := plan.Validate(); err != nil {
				return fmt.Errorf("areyouhuman: %w", err)
			}
		}
		o.chaos = plan
		return nil
	}
}

// WithChaosPreset subjects the run to a named built-in fault plan
// ("flaky", "outage", "degraded"; "" and "none" are no-ops).
func WithChaosPreset(name string) Option {
	return func(o *runOptions) error {
		plan, err := chaos.Preset(name)
		if err != nil {
			return fmt.Errorf("areyouhuman: %w", err)
		}
		o.chaos = plan
		return nil
	}
}

// WithReplicas runs the full study n times in independent seeded worlds and
// aggregates (n < 1 is treated as 1).
func WithReplicas(n int) Option {
	return func(o *runOptions) error { o.replicas = n; return nil }
}

// WithParallelism caps the replica worker count (0 = GOMAXPROCS). It
// affects wall time only, never results.
func WithParallelism(workers int) Option {
	return func(o *runOptions) error { o.parallel = workers; return nil }
}

// WithShardWorkers runs each world on the sharded scheduler with n workers:
// the event queue is partitioned into host-keyed shards drained concurrently
// in lock-stepped virtual-time windows (see internal/simclock). Every
// observable output — journal, metrics, study tables — is byte-identical for
// any n >= 1, including n = 1, so the worker count affects wall time only.
// n = 0 (the default) keeps the classic serial scheduler, whose event
// interleaving the calibrated paper claims were recorded under; n < 0 is a
// *ShardWorkersError.
func WithShardWorkers(n int) Option {
	return func(o *runOptions) error {
		if n < 0 {
			return &ShardWorkersError{N: n, Min: 0}
		}
		o.cfg.ShardWorkers = n
		return nil
	}
}

// StudyResult is what Run produces. Exactly one of
// Results/Replicas/Campaign/Population is the primary view: single runs
// fill Results, WithReplicas(n>1) fills Replicas, WithCampaign(n) fills
// Campaign, WithPopulation fills Population.
type StudyResult struct {
	// Results is the single-run study (nil when another view is primary).
	Results *Results
	// Replicas is the multi-replica study (nil otherwise).
	Replicas *ReplicaSet
	// Campaign is the streaming campaign study (nil otherwise).
	Campaign *CampaignResults
	// Population is the heterogeneous-victim exposure study (nil otherwise).
	Population *PopulationResults
}

// Report renders whichever study ran. For campaigns and populations this is
// the deterministic table only — wall-clock figures (throughput, peak heap)
// stay in the result fields so Report stays byte-comparable across machines
// and worker counts.
func (r *StudyResult) Report() string {
	if r.Replicas != nil {
		return r.Replicas.Report()
	}
	if r.Campaign != nil {
		return r.Campaign.RenderTable()
	}
	if r.Population != nil {
		return r.Population.RenderTable()
	}
	if r.Results != nil {
		return r.Results.Report()
	}
	return ""
}

// WithCampaign switches the run to a paper-scale streaming campaign study
// of n phishing URLs (see internal/campaign): URLs deploy in waves on the
// free-hosting providers, each is reported to one engine and scored when
// its measurement window closes, and results stream into fixed-size
// (engine, brand, technique) cells — memory stays flat from 10k to 1M URLs.
// Composes with WithSeed, WithJournal, WithTelemetry, and WithShardWorkers;
// it does not compose with WithReplicas. n < 1 is a *CampaignSizeError.
func WithCampaign(n int) Option {
	return func(o *runOptions) error {
		if n <= 0 {
			return &CampaignSizeError{N: n}
		}
		o.campaign.URLs = n
		return nil
	}
}

// WithCampaignProvider selects the campaign hosting model: "free" (shared
// free-hosting apexes with IP reputation and provider sweeps, the default)
// or "dedicated" (one registrable domain per URL). Requires WithCampaign.
func WithCampaignProvider(name string) Option {
	return func(o *runOptions) error {
		if name != campaign.ProviderFree && name != campaign.ProviderDedicated {
			return fmt.Errorf("%w %q", ErrCampaignProvider, name)
		}
		o.campaign.Provider = name
		return nil
	}
}

// Run executes the study under ctx. Cancelling ctx stops the simulation
// within a bounded number of events and returns ctx's error. The zero-option
// call reproduces the paper's three experiments with default settings.
func Run(ctx context.Context, opts ...Option) (*StudyResult, error) {
	var o runOptions
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(&o); err != nil {
			return nil, wrapFacade(err)
		}
	}
	if o.campaign.Provider != "" && o.campaign.URLs == 0 {
		return nil, fmt.Errorf("areyouhuman: WithCampaignProvider requires WithCampaign: %w", ErrOptionConflict)
	}
	if o.population != nil {
		res, err := runPopulation(ctx, &o)
		if err != nil {
			return nil, err
		}
		return &StudyResult{Population: res}, nil
	}
	if o.campaign.URLs > 0 {
		if o.replicas > 1 {
			return nil, fmt.Errorf("areyouhuman: campaign studies do not compose with replicas: %w", ErrOptionConflict)
		}
		f := core.New(o.internalConfig())
		if ctx != nil {
			f.WithContext(ctx)
		}
		res, err := f.RunCampaign(o.campaign)
		if err != nil {
			return nil, wrapFacade(err)
		}
		if err := o.journalW.Flush(); err != nil {
			return nil, fmt.Errorf("areyouhuman: %w", err)
		}
		return &StudyResult{Campaign: res}, nil
	}
	if o.replicas > 1 {
		rs, err := core.RunReplicas(core.ReplicaOptions{
			Replicas:   o.replicas,
			Parallel:   o.parallel,
			MasterSeed: o.cfg.Seed,
			Base:       o.internalConfig(),
			Ctx:        ctx,
		})
		if err != nil {
			return nil, wrapFacade(err)
		}
		return &StudyResult{Replicas: rs}, nil
	}
	f := core.New(o.internalConfig())
	if ctx != nil {
		f.WithContext(ctx)
	}
	res, err := f.RunAll()
	if err != nil {
		return nil, wrapFacade(err)
	}
	if err := o.journalW.Flush(); err != nil {
		return nil, fmt.Errorf("areyouhuman: %w", err)
	}
	return &StudyResult{Results: res}, nil
}

// runPopulation validates the population composition rules and runs the
// exposure study, applying the TrafficScale compat shim to a zero spec.
func runPopulation(ctx context.Context, o *runOptions) (*PopulationResults, error) {
	if o.replicas > 1 {
		return nil, fmt.Errorf("areyouhuman: %w",
			&PopulationError{Reason: "population studies do not compose with replicas"})
	}
	if o.campaign.URLs > 0 || o.campaign.Provider != "" {
		return nil, fmt.Errorf("areyouhuman: %w",
			&PopulationError{Reason: "population studies do not compose with campaigns"})
	}
	spec := *o.population
	if spec.Size == 0 && len(spec.Cohorts) == 0 && spec.Name == "" {
		scale := o.cfg.TrafficScale
		if scale == 0 {
			scale = 1
		}
		spec = population.Uniform(scale)
	}
	if err := spec.WithDefaults().Validate(); err != nil {
		return nil, fmt.Errorf("areyouhuman: %w",
			&PopulationError{Reason: "invalid spec", Err: err})
	}
	f := core.New(o.internalConfig())
	if ctx != nil {
		f.WithContext(ctx)
	}
	res, err := f.RunPopulation(spec)
	if err != nil {
		return nil, wrapFacade(err)
	}
	if err := o.journalW.Flush(); err != nil {
		return nil, fmt.Errorf("areyouhuman: %w", err)
	}
	return res, nil
}

// NewFramework returns a study framework for cfg.
func NewFramework(cfg Config) *Framework { return core.New(cfg.internal()) }

// PaperScaleFunnel runs the domain-selection pipeline over a synthetic
// 1M-name popularity list, reproducing the paper's exact funnel
// 1,000,000 -> 770 -> 251 -> 244 -> 244 -> 50.
func PaperScaleFunnel() (Funnel, error) {
	funnel, err := core.FunnelAtPaperScale()
	if err != nil {
		return Funnel{}, wrapFacade(err)
	}
	return funnel, nil
}
