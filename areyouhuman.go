// Package areyouhuman reproduces the measurement study "Are You Human?
// Resilience of Phishing Detection to Evasion Techniques Based on Human
// Verification" (Maroofi, Korczyński, Duda — ACM IMC 2020) as a runnable
// simulation.
//
// The paper deploys 105 harmless phishing websites, protects each with one
// of three human-verification evasion techniques — a JavaScript alert box, a
// session-based multi-page flow, or Google reCAPTCHA — reports every URL to
// a major anti-phishing entity, and watches the blacklists. This module
// rebuilds that entire world in-process: a virtual internet, DNS, WHOIS,
// registrars, a certificate authority, a reCAPTCHA service, a fake-website
// generator, the three phishing kits, browser emulation with a real (small)
// JavaScript interpreter, the seven server-side engines with calibrated
// capability profiles, and the six client-side extensions — and re-runs the
// paper's three experiments on a virtual clock.
//
// Quick start:
//
//	res, err := areyouhuman.Run(context.Background())
//	if err != nil { ... }
//	fmt.Print(res.Report())
//
// The defaults reproduce the paper's Tables 1–3 and headline numbers: 8 of
// 105 protected URLs detected, GSB alone bypassing the alert box (average
// ≈132 minutes), NetCraft alone bypassing session pages (2 of 6 confirmed),
// and not a single reCAPTCHA-protected URL detected by anyone.
//
// Options compose the larger studies — seeded replicas, telemetry, and
// deterministic fault injection:
//
//	res, err := areyouhuman.Run(ctx,
//		areyouhuman.WithSeed(42),
//		areyouhuman.WithReplicas(8),
//		areyouhuman.WithChaosPreset("flaky"))
package areyouhuman

import (
	"context"
	"fmt"
	"io"

	"areyouhuman/internal/campaign"
	"areyouhuman/internal/chaos"
	"areyouhuman/internal/core"
	"areyouhuman/internal/dropcatch"
	"areyouhuman/internal/experiment"
	"areyouhuman/internal/journal"
	"areyouhuman/internal/simclock"
	"areyouhuman/internal/telemetry"
)

// Config parameterises a study run. The zero value reproduces the paper.
type Config = experiment.Config

// Framework orchestrates the three experiments; see internal/core.
type Framework = core.Framework

// Results aggregates the three experiments' outputs.
type Results = core.Results

// Claim is one headline paper-vs-measured comparison.
type Claim = core.Claim

// Table1Row is one row of the preliminary test's Table 1.
type Table1Row = experiment.Table1Row

// MainResults carries Table 2 plus timing statistics.
type MainResults = experiment.MainResults

// Table3Row is one row of the client-side extension Table 3.
type Table3Row = experiment.Table3Row

// Funnel is the drop-catch selection funnel (Section 3).
type Funnel = dropcatch.Funnel

// CampaignConfig sizes a paper-scale streaming campaign study; see
// internal/campaign for the defaults and the constant-memory contract.
type CampaignConfig = campaign.Config

// CampaignResults is a campaign study's aggregated output.
type CampaignResults = campaign.Results

// ChaosPlan is a declarative fault-injection plan; see internal/chaos for
// the fault kinds and the determinism contract.
type ChaosPlan = chaos.Plan

// ReplicaSet is the outcome of a multi-replica run: one full study per
// replica plus cross-replica aggregation.
type ReplicaSet = core.ReplicaSet

// Error surfaces, re-exported so callers can errors.Is/As without importing
// internal packages.
var (
	// ErrClosed reports events scheduled on a retired world.
	ErrClosed = simclock.ErrClosed
	// ErrUnknownEngine reports a report submitted to a nonexistent engine.
	ErrUnknownEngine = experiment.ErrUnknownEngine
	// ErrDeployFailed matches every failed deployment (errors.As against
	// *DeployError recovers the domain and cause).
	ErrDeployFailed = experiment.ErrDeployFailed
	// ErrUnknownPreset reports an unrecognised chaos preset name.
	ErrUnknownPreset = chaos.ErrUnknownPreset
	// ErrCampaignProvider reports an unknown campaign provider name.
	ErrCampaignProvider = campaign.ErrProvider
	// ErrCampaignSize reports a non-positive campaign URL count.
	ErrCampaignSize = campaign.ErrSize
)

// DeployError is the concrete deployment failure (domain + cause).
type DeployError = experiment.DeployError

// Option adjusts a Run.
type Option func(*runOptions) error

type runOptions struct {
	cfg      Config
	replicas int
	parallel int
	campaign CampaignConfig
}

// WithConfig replaces the whole configuration. Options applied after it
// still take effect; options applied before it are overwritten.
func WithConfig(cfg Config) Option {
	return func(o *runOptions) error { o.cfg = cfg; return nil }
}

// WithSeed sets the experiment seed (the master seed under WithReplicas).
// Zero selects the paper-calibrated default.
func WithSeed(seed int64) Option {
	return func(o *runOptions) error { o.cfg.Seed = seed; return nil }
}

// WithTrafficScale scales the engines' crawler-fleet volumes (1 = the
// Table 1 calibration; tests use small values for speed).
func WithTrafficScale(scale float64) Option {
	return func(o *runOptions) error { o.cfg.TrafficScale = scale; return nil }
}

// WithTelemetry instruments the run end to end (see telemetry.Set).
// Telemetry observes only; results are identical with or without it.
func WithTelemetry(tel *telemetry.Set) Option {
	return func(o *runOptions) error { o.cfg.Telemetry = tel; return nil }
}

// WithJournal streams the run's lifecycle journal — every deploy, report,
// deciding crawl, listing, sighting, and fault injection, virtual-clock
// stamped and causally linked — to w as JSON Lines (see internal/journal).
// Like telemetry it observes only: results are identical with or without it,
// and the journal bytes themselves are bit-identical for a fixed seed
// regardless of -parallel. Wrap w in a bufio.Writer when writing to a file;
// a nil w is a no-op.
func WithJournal(w io.Writer) Option {
	return func(o *runOptions) error { o.cfg.Journal = journal.NewWriter(w); return nil }
}

// WithChaosPlan subjects the run to a fault-injection plan. The plan is
// validated here so a malformed plan fails before any world is built.
func WithChaosPlan(plan *ChaosPlan) Option {
	return func(o *runOptions) error {
		if plan != nil {
			if err := plan.Validate(); err != nil {
				return err
			}
		}
		o.cfg.Chaos = plan
		return nil
	}
}

// WithChaosPreset subjects the run to a named built-in fault plan
// ("flaky", "outage", "degraded"; "" and "none" are no-ops).
func WithChaosPreset(name string) Option {
	return func(o *runOptions) error {
		plan, err := chaos.Preset(name)
		if err != nil {
			return err
		}
		o.cfg.Chaos = plan
		return nil
	}
}

// WithReplicas runs the full study n times in independent seeded worlds and
// aggregates (n < 1 is treated as 1).
func WithReplicas(n int) Option {
	return func(o *runOptions) error { o.replicas = n; return nil }
}

// WithParallelism caps the replica worker count (0 = GOMAXPROCS). It
// affects wall time only, never results.
func WithParallelism(workers int) Option {
	return func(o *runOptions) error { o.parallel = workers; return nil }
}

// WithShardWorkers runs each world on the sharded scheduler with n workers:
// the event queue is partitioned into host-keyed shards drained concurrently
// in lock-stepped virtual-time windows (see internal/simclock). Every
// observable output — journal, metrics, study tables — is byte-identical for
// any n >= 1, including n = 1, so the worker count affects wall time only.
// n = 0 (the default) keeps the classic serial scheduler, whose event
// interleaving the calibrated paper claims were recorded under; n < 0 is an
// error.
func WithShardWorkers(n int) Option {
	return func(o *runOptions) error {
		if n < 0 {
			return fmt.Errorf("shard workers must be >= 0, got %d", n)
		}
		o.cfg.ShardWorkers = n
		return nil
	}
}

// StudyResult is what Run produces. Exactly one of
// Results/Replicas/Campaign is the primary view: single runs fill Results,
// WithReplicas(n>1) fills Replicas, WithCampaign(n) fills Campaign.
type StudyResult struct {
	// Results is the single-run study (nil when Replicas or Campaign is set).
	Results *Results
	// Replicas is the multi-replica study (nil otherwise).
	Replicas *ReplicaSet
	// Campaign is the streaming campaign study (nil otherwise).
	Campaign *CampaignResults
}

// Report renders whichever study ran. For campaigns this is the
// deterministic table only — wall-clock figures (throughput, peak heap)
// stay in the Campaign fields so Report stays byte-comparable across
// machines and worker counts.
func (r *StudyResult) Report() string {
	if r.Replicas != nil {
		return r.Replicas.Report()
	}
	if r.Campaign != nil {
		return r.Campaign.RenderTable()
	}
	if r.Results != nil {
		return r.Results.Report()
	}
	return ""
}

// WithCampaign switches the run to a paper-scale streaming campaign study
// of n phishing URLs (see internal/campaign): URLs deploy in waves on the
// free-hosting providers, each is reported to one engine and scored when
// its measurement window closes, and results stream into fixed-size
// (engine, brand, technique) cells — memory stays flat from 10k to 1M URLs.
// Composes with WithSeed, WithJournal, WithTelemetry, and WithShardWorkers;
// it does not compose with WithReplicas. n must be positive.
func WithCampaign(n int) Option {
	return func(o *runOptions) error {
		if n <= 0 {
			return fmt.Errorf("%w (got %d)", ErrCampaignSize, n)
		}
		o.campaign.URLs = n
		return nil
	}
}

// WithCampaignProvider selects the campaign hosting model: "free" (shared
// free-hosting apexes with IP reputation and provider sweeps, the default)
// or "dedicated" (one registrable domain per URL). Requires WithCampaign.
func WithCampaignProvider(name string) Option {
	return func(o *runOptions) error {
		if name != campaign.ProviderFree && name != campaign.ProviderDedicated {
			return fmt.Errorf("%w %q", ErrCampaignProvider, name)
		}
		o.campaign.Provider = name
		return nil
	}
}

// Run executes the study under ctx. Cancelling ctx stops the simulation
// within a bounded number of events and returns ctx's error. The zero-option
// call reproduces the paper's three experiments with default settings.
func Run(ctx context.Context, opts ...Option) (*StudyResult, error) {
	var o runOptions
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(&o); err != nil {
			return nil, fmt.Errorf("areyouhuman: %w", err)
		}
	}
	if o.campaign.Provider != "" && o.campaign.URLs == 0 {
		return nil, fmt.Errorf("areyouhuman: WithCampaignProvider requires WithCampaign")
	}
	if o.campaign.URLs > 0 {
		if o.replicas > 1 {
			return nil, fmt.Errorf("areyouhuman: campaign studies do not compose with replicas")
		}
		f := core.New(o.cfg)
		if ctx != nil {
			f.WithContext(ctx)
		}
		res, err := f.RunCampaign(o.campaign)
		if err != nil {
			return nil, err
		}
		if err := o.cfg.Journal.Flush(); err != nil {
			return nil, fmt.Errorf("areyouhuman: %w", err)
		}
		return &StudyResult{Campaign: res}, nil
	}
	if o.replicas > 1 {
		rs, err := core.RunReplicas(core.ReplicaOptions{
			Replicas:   o.replicas,
			Parallel:   o.parallel,
			MasterSeed: o.cfg.Seed,
			Base:       o.cfg,
			Ctx:        ctx,
		})
		if err != nil {
			return nil, err
		}
		return &StudyResult{Replicas: rs}, nil
	}
	f := core.New(o.cfg)
	if ctx != nil {
		f.WithContext(ctx)
	}
	res, err := f.RunAll()
	if err != nil {
		return nil, err
	}
	if err := o.cfg.Journal.Flush(); err != nil {
		return nil, fmt.Errorf("areyouhuman: %w", err)
	}
	return &StudyResult{Results: res}, nil
}

// NewFramework returns a study framework for cfg.
func NewFramework(cfg Config) *Framework { return core.New(cfg) }

// RunStudy runs all three experiments and returns the aggregated results.
//
// Deprecated: use Run(ctx, WithConfig(cfg)), which adds cancellation and
// composes with the chaos and replica options. RunStudy remains as a
// compatibility shim and behaves exactly as before.
func RunStudy(cfg Config) (*Results, error) {
	return core.New(cfg).RunAll()
}

// PaperScaleFunnel runs the domain-selection pipeline over a synthetic
// 1M-name popularity list, reproducing the paper's exact funnel
// 1,000,000 -> 770 -> 251 -> 244 -> 244 -> 50.
func PaperScaleFunnel() (Funnel, error) {
	return core.FunnelAtPaperScale()
}
