// Package areyouhuman reproduces the measurement study "Are You Human?
// Resilience of Phishing Detection to Evasion Techniques Based on Human
// Verification" (Maroofi, Korczyński, Duda — ACM IMC 2020) as a runnable
// simulation.
//
// The paper deploys 105 harmless phishing websites, protects each with one
// of three human-verification evasion techniques — a JavaScript alert box, a
// session-based multi-page flow, or Google reCAPTCHA — reports every URL to
// a major anti-phishing entity, and watches the blacklists. This module
// rebuilds that entire world in-process: a virtual internet, DNS, WHOIS,
// registrars, a certificate authority, a reCAPTCHA service, a fake-website
// generator, the three phishing kits, browser emulation with a real (small)
// JavaScript interpreter, the seven server-side engines with calibrated
// capability profiles, and the six client-side extensions — and re-runs the
// paper's three experiments on a virtual clock.
//
// Quick start:
//
//	results, err := areyouhuman.RunStudy(areyouhuman.Config{})
//	if err != nil { ... }
//	fmt.Print(results.Report())
//
// The defaults reproduce the paper's Tables 1–3 and headline numbers: 8 of
// 105 protected URLs detected, GSB alone bypassing the alert box (average
// ≈132 minutes), NetCraft alone bypassing session pages (2 of 6 confirmed),
// and not a single reCAPTCHA-protected URL detected by anyone.
package areyouhuman

import (
	"areyouhuman/internal/core"
	"areyouhuman/internal/dropcatch"
	"areyouhuman/internal/experiment"
)

// Config parameterises a study run. The zero value reproduces the paper.
type Config = experiment.Config

// Framework orchestrates the three experiments; see internal/core.
type Framework = core.Framework

// Results aggregates the three experiments' outputs.
type Results = core.Results

// Claim is one headline paper-vs-measured comparison.
type Claim = core.Claim

// Table1Row is one row of the preliminary test's Table 1.
type Table1Row = experiment.Table1Row

// MainResults carries Table 2 plus timing statistics.
type MainResults = experiment.MainResults

// Table3Row is one row of the client-side extension Table 3.
type Table3Row = experiment.Table3Row

// Funnel is the drop-catch selection funnel (Section 3).
type Funnel = dropcatch.Funnel

// NewFramework returns a study framework for cfg.
func NewFramework(cfg Config) *Framework { return core.New(cfg) }

// RunStudy runs all three experiments (preliminary, main, extensions) and
// returns the aggregated results.
func RunStudy(cfg Config) (*Results, error) {
	return core.New(cfg).RunAll()
}

// PaperScaleFunnel runs the domain-selection pipeline over a synthetic
// 1M-name popularity list, reproducing the paper's exact funnel
// 1,000,000 -> 770 -> 251 -> 244 -> 244 -> 50.
func PaperScaleFunnel() (Funnel, error) {
	return core.FunnelAtPaperScale()
}
