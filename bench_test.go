package areyouhuman

// The benchmark harness regenerates every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment end to end on
// the virtual clock and reports the paper's headline quantities as
// ReportMetric values; `go test -bench=. -benchmem` therefore reprints the
// study. Absolute wall-clock numbers measure the simulator, not the authors'
// testbed; the *shape* assertions (who detects what) are enforced by the
// accompanying fataling checks.

import (
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"areyouhuman/internal/browser"
	"areyouhuman/internal/core"
	"areyouhuman/internal/dropcatch"
	"areyouhuman/internal/engines"
	"areyouhuman/internal/evasion"
	"areyouhuman/internal/experiment"
	"areyouhuman/internal/phishkit"
	"areyouhuman/internal/telemetry"
)

// benchCfg uses reduced fleet traffic so iterations stay fast; detection
// outcomes are identical at any scale. Benchmarks drive the internal
// experiment/core layers directly, so they use the internal config.
func benchCfg() experiment.Config {
	return experiment.Config{TrafficScale: 0.01, MainTrafficPerReport: 50}
}

// fullCfg is the Table 1 calibration at full volume.
func fullCfg() experiment.Config { return experiment.Config{} }

// BenchmarkTable1Preliminary regenerates Table 1 at the paper's full crawl
// volumes (≈105k requests across the seven engines).
func BenchmarkTable1Preliminary(b *testing.B) {
	var rows []Table1Row
	for i := 0; i < b.N; i++ {
		w := experiment.NewWorld(fullCfg())
		var err error
		rows, err = w.RunPreliminary()
		if err != nil {
			b.Fatal(err)
		}
	}
	total := 0
	for _, r := range rows {
		total += r.Requests
		if r.Engine == engines.OpenPhish {
			b.ReportMetric(float64(r.Requests), "openphish-reqs")
			b.ReportMetric(float64(r.UniqueIPs), "openphish-ips")
		}
	}
	b.ReportMetric(float64(total), "total-requests")
	b.Logf("Table 1\n%s", experiment.RenderTable1(rows))
}

// BenchmarkTable2Main regenerates Table 2: the 105-URL, two-virtual-week
// main experiment.
func BenchmarkTable2Main(b *testing.B) {
	var res *MainResults
	for i := 0; i < b.N; i++ {
		w := experiment.NewWorld(benchCfg())
		var err error
		res, err = w.RunMain()
		if err != nil {
			b.Fatal(err)
		}
	}
	if res.TotalDetected != 8 || res.TotalURLs != 105 {
		b.Fatalf("main experiment = %d/%d detected, want 8/105", res.TotalDetected, res.TotalURLs)
	}
	b.ReportMetric(float64(res.TotalDetected), "detected")
	b.ReportMetric(float64(res.TotalURLs), "submitted")
	b.Logf("Table 2\n%s", experiment.RenderTable2(res))
}

// BenchmarkTable3Extensions regenerates Table 3: six extensions, nine URLs,
// three visits each.
func BenchmarkTable3Extensions(b *testing.B) {
	var rows []Table3Row
	for i := 0; i < b.N; i++ {
		w := experiment.NewWorld(benchCfg())
		var err error
		rows, err = w.RunExtensions()
		if err != nil {
			b.Fatal(err)
		}
	}
	detected := 0
	for _, r := range rows {
		detected += r.Detected
	}
	if detected != 0 {
		b.Fatalf("extensions detected %d URLs, paper reports 0", detected)
	}
	b.ReportMetric(0, "detected")
	b.ReportMetric(float64(len(rows)*9), "url-visits")
	b.Logf("Table 3\n%s", experiment.RenderTable3(rows))
}

// figureWorld deploys one technique and returns the phishing URL plus the
// world.
func figureWorld(b *testing.B, tech evasion.Technique) (*experiment.World, string) {
	b.Helper()
	w := experiment.NewWorld(benchCfg())
	d, err := w.Deploy("figure-demo.com", experiment.MountSpec{Brand: phishkit.PayPal, Technique: tech})
	if err != nil {
		b.Fatal(err)
	}
	return w, d.Mounts[0].URL
}

// BenchmarkFigure1AlertBox exercises Figure 1's two page states: the
// alert-box gate before and after confirmation.
func BenchmarkFigure1AlertBox(b *testing.B) {
	w, url := figureWorld(b, evasion.AlertBox)
	for i := 0; i < b.N; i++ {
		human := browser.New(w.Net, browser.Config{
			ExecuteScripts: true, AlertPolicy: browser.AlertConfirm, TimerBudget: time.Minute,
		})
		page, err := human.Open(url)
		if err != nil {
			b.Fatal(err)
		}
		if !strings.Contains(page.Title(), "PayPal") {
			b.Fatalf("confirming visitor should see the payload, got %q", page.Title())
		}
	}
}

// BenchmarkFigure2SessionBased exercises Figure 2's cover page -> payload
// flow.
func BenchmarkFigure2SessionBased(b *testing.B) {
	w, url := figureWorld(b, evasion.SessionBased)
	for i := 0; i < b.N; i++ {
		human := browser.New(w.Net, browser.Config{})
		cover, err := human.Open(url)
		if err != nil {
			b.Fatal(err)
		}
		payload, err := cover.Submit(cover.Forms()[0], nil)
		if err != nil {
			b.Fatal(err)
		}
		if !strings.Contains(payload.Title(), "PayPal") {
			b.Fatalf("join-chat click should reveal the payload, got %q", payload.Title())
		}
	}
}

// BenchmarkFigure3ReCAPTCHA exercises Figure 3: solving the checkbox reveals
// the payload under the unchanged URL.
func BenchmarkFigure3ReCAPTCHA(b *testing.B) {
	w, url := figureWorld(b, evasion.Recaptcha)
	for i := 0; i < b.N; i++ {
		human := browser.New(w.Net, browser.Config{
			ExecuteScripts: true, AlertPolicy: browser.AlertConfirm,
			TimerBudget: time.Hour, CanSolveCAPTCHA: true,
		})
		page, err := human.Open(url)
		if err != nil {
			b.Fatal(err)
		}
		if !strings.Contains(page.Title(), "PayPal") {
			b.Fatalf("solver should reach payload, got %q", page.Title())
		}
		if got := "https://" + page.URL.Host + page.URL.Path; got != url {
			b.Fatalf("URL changed to %s", got)
		}
	}
}

// BenchmarkTimeToBlacklist regenerates the Section 4 timing claims: GSB's
// ≈132-minute alert-box average and NetCraft's single-digit-minute session
// listings.
func BenchmarkTimeToBlacklist(b *testing.B) {
	var res *MainResults
	for i := 0; i < b.N; i++ {
		w := experiment.NewWorld(benchCfg())
		var err error
		res, err = w.RunMain()
		if err != nil {
			b.Fatal(err)
		}
	}
	gsb := experiment.AverageDuration(res.GSBAlertBoxTimes)
	b.ReportMetric(gsb.Minutes(), "gsb-alert-avg-min")
	for i, d := range res.NetCraftSessionTimes {
		b.ReportMetric(d.Minutes(), fmt.Sprintf("netcraft-session-%d-min", i+1))
	}
}

// BenchmarkTrafficConcentration regenerates the "~90% of traffic within the
// first 2 hours" observation.
func BenchmarkTrafficConcentration(b *testing.B) {
	var conc float64
	for i := 0; i < b.N; i++ {
		w := experiment.NewWorld(experiment.Config{TrafficScale: 0.1})
		if _, err := w.RunPreliminary(); err != nil {
			b.Fatal(err)
		}
		total, within := 0, 0.0
		for _, d := range w.Deployments() {
			n := d.Log.Requests()
			total += n
			within += d.Log.TrafficConcentration(2*time.Hour+15*time.Minute) * float64(n)
		}
		conc = within / float64(total)
	}
	if conc < 0.8 {
		b.Fatalf("traffic concentration = %.2f, want ≈0.9", conc)
	}
	b.ReportMetric(conc*100, "pct-in-first-2h")
}

// BenchmarkBaselineCloaking regenerates the Oest et al. context numbers the
// paper compares against: cloaked sites still detected ≈23% of the time at a
// ≈238-minute average delay.
func BenchmarkBaselineCloaking(b *testing.B) {
	var res core.CloakingBaselineResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = core.New(benchCfg()).RunCloakingBaseline()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Detected)/float64(res.Total)*100, "pct-detected")
	b.ReportMetric(res.AvgDelay.Minutes(), "avg-delay-min")
}

// BenchmarkDropCatchFunnel regenerates the Section 3 selection funnel at the
// paper's full 1M-domain scale.
func BenchmarkDropCatchFunnel(b *testing.B) {
	var funnel Funnel
	for i := 0; i < b.N; i++ {
		w, err := dropcatch.NewWorld(dropcatch.PaperConfig())
		if err != nil {
			b.Fatal(err)
		}
		_, funnel = dropcatch.Run(w.Top, w.Services(), 50)
	}
	want := "1000000 -> 770 -> 251 -> 244 -> 244 -> 50"
	if funnel.String() != want {
		b.Fatalf("funnel = %s, want %s", funnel, want)
	}
	b.ReportMetric(float64(funnel.Selected), "selected")
	b.Logf("funnel: %s", funnel)
}

// BenchmarkAblationNoVerdictCache quantifies the client verdict-cache window
// (design choice: 5–60 min GSB caching semantics).
func BenchmarkAblationNoVerdictCache(b *testing.B) {
	var res core.CacheAblationResult
	for i := 0; i < b.N; i++ {
		res = core.New(benchCfg()).RunVerdictCacheAblation()
	}
	if !res.MaskedWithCache || !res.VisibleWithoutCache {
		b.Fatalf("cache ablation = %+v", res)
	}
}

// BenchmarkAblationAlertConfirmAll grants every engine GSB's alert handling.
func BenchmarkAblationAlertConfirmAll(b *testing.B) {
	var res core.AlertAblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = core.New(benchCfg()).RunAlertConfirmAblation()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.BaselineDetected), "baseline-detected")
	b.ReportMetric(float64(res.ConfirmAll), "confirm-all-detected")
}

// BenchmarkAblationNoFormSubmit removes NetCraft's form submission.
func BenchmarkAblationNoFormSubmit(b *testing.B) {
	var res core.FormAblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = core.New(benchCfg()).RunFormSubmitAblation()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.BaselineBypasses), "baseline-bypasses")
	b.ReportMetric(float64(res.NoSubmitBypasses), "no-submit-bypasses")
}

// BenchmarkAblationKitProvenance compares scratch-built vs cloned Gmail kits
// under a fingerprint-only engine.
func BenchmarkAblationKitProvenance(b *testing.B) {
	var res core.ProvenanceAblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = core.New(benchCfg()).RunKitProvenanceAblation()
		if err != nil {
			b.Fatal(err)
		}
	}
	if res.ScratchDetected || !res.ClonedDetected {
		b.Fatalf("provenance ablation = %+v", res)
	}
}

// BenchmarkAblationNoFeedSharing severs the blacklist-sharing graph.
func BenchmarkAblationNoFeedSharing(b *testing.B) {
	var res core.SharingAblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = core.New(benchCfg()).RunFeedSharingAblation()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.BaselineCrossFeeds), "baseline-cross-feeds")
	b.ReportMetric(float64(res.SeveredCrossFeeds), "severed-cross-feeds")
}

// BenchmarkTelemetryOverhead compares a full main-stage run with telemetry
// disabled (the nil-safe no-op path every call site takes by default) against
// one with a live registry and a tracer draining to io.Discard. The noop
// variant is the guardrail: it must stay within a few percent of the seed,
// proving uninstrumented runs pay only nil checks.
func BenchmarkTelemetryOverhead(b *testing.B) {
	run := func(b *testing.B, set *telemetry.Set) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			cfg := benchCfg()
			cfg.Telemetry = set
			w := experiment.NewWorld(cfg)
			res, err := w.RunMain()
			if err != nil {
				b.Fatal(err)
			}
			if res.TotalDetected != 8 {
				b.Fatalf("detected = %d, want 8 (telemetry must not perturb outcomes)", res.TotalDetected)
			}
		}
	}
	b.Run("noop", func(b *testing.B) { run(b, nil) })
	b.Run("instrumented", func(b *testing.B) {
		set := &telemetry.Set{
			Tracer:  telemetry.NewTracer(io.Discard),
			Metrics: telemetry.NewRegistry(),
		}
		run(b, set)
		b.ReportMetric(float64(set.Tracer.Records())/float64(b.N), "trace-records/op")
	})
}

// BenchmarkLifespanExposure quantifies the paper's motivation — how much
// victim exposure each technique buys by delaying or defeating blacklisting
// (1 victim/hour for 3 days against GSB-protected browsers).
func BenchmarkLifespanExposure(b *testing.B) {
	var results []core.ExposureResult
	for i := 0; i < b.N; i++ {
		var err error
		results, err = core.New(benchCfg()).RunExposureStudy()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range results {
		b.ReportMetric(r.ExposureRate()*100, "pct-exposed-"+r.Technique.String())
	}
	b.Logf("exposure study\n%s", core.RenderExposure(results))
}
