package areyouhuman

import (
	"context"
	"strings"
	"testing"
)

// TestPaperReproduction drives the public facade end to end and asserts the
// shape of every paper table. This is the repository's single highest-level
// check: if it passes, the reproduction holds.
func TestPaperReproduction(t *testing.T) {
	res, err := Run(context.Background(), WithConfig(Config{TrafficScale: 0.002}))
	if err != nil {
		t.Fatal(err)
	}
	results := res.Results
	if results.Main.TotalDetected != 8 || results.Main.TotalURLs != 105 {
		t.Fatalf("main = %d/%d, want 8/105", results.Main.TotalDetected, results.Main.TotalURLs)
	}
	for _, c := range results.Claims() {
		if !c.Holds {
			t.Errorf("claim %q diverges: paper %s, measured %s", c.Name, c.Paper, c.Measured)
		}
	}
	report := results.Report()
	if !strings.Contains(report, "total detected: 8/105") {
		t.Fatalf("report missing headline:\n%s", report)
	}
}

func TestPaperScaleFunnelFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-name funnel")
	}
	funnel, err := PaperScaleFunnel()
	if err != nil {
		t.Fatal(err)
	}
	if got := funnel.String(); got != "1000000 -> 770 -> 251 -> 244 -> 244 -> 50" {
		t.Fatalf("funnel = %s", got)
	}
}

func TestFrameworkStagesIndependent(t *testing.T) {
	f := NewFramework(Config{TrafficScale: 0.002})
	t1, err := f.RunPreliminary()
	if err != nil {
		t.Fatal(err)
	}
	if len(t1) != 7 {
		t.Fatalf("table 1 rows = %d", len(t1))
	}
	t3, err := f.RunExtensions()
	if err != nil {
		t.Fatal(err)
	}
	if len(t3) != 6 {
		t.Fatalf("table 3 rows = %d", len(t3))
	}
}
