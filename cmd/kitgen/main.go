// Command kitgen generates one of the study's phishing kits (harmless: the
// credential collector stores nothing) and packs it as a .zip.
//
// Usage:
//
//	kitgen -brand paypal|facebook|gmail [-cloned] [-zip kit.zip]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"areyouhuman/internal/phishkit"
)

func main() {
	var (
		brandFlag = flag.String("brand", "paypal", "target brand: paypal, facebook, gmail")
		cloned    = flag.Bool("cloned", false, "force cloned provenance (Gmail defaults to from-scratch)")
		zipOut    = flag.String("zip", "", "write the kit as a .zip to this path")
	)
	flag.Parse()

	var brand phishkit.Brand
	switch strings.ToLower(*brandFlag) {
	case "paypal":
		brand = phishkit.PayPal
	case "facebook":
		brand = phishkit.Facebook
	case "gmail":
		brand = phishkit.Gmail
	default:
		fmt.Fprintf(os.Stderr, "kitgen: unknown brand %q\n", *brandFlag)
		os.Exit(2)
	}

	var kit *phishkit.Kit
	var err error
	if *cloned {
		kit, err = phishkit.GenerateWithProvenance(brand, phishkit.Cloned)
	} else {
		kit, err = phishkit.Generate(brand)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s kit (%s): %d bytes of HTML, %d bundled resources, credentials post to %s\n",
		kit.Brand, kit.Provenance, len(kit.LoginHTML), len(kit.Resources), kit.CollectPath)

	if *zipOut != "" {
		f, err := os.Create(*zipOut)
		if err != nil {
			fatal(err)
		}
		if err := kit.WriteZip(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *zipOut)
		return
	}
	fmt.Println(kit.LoginHTML)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kitgen:", err)
	os.Exit(1)
}
