// Command sitegen (import path areyouhuman/cmd/sitegen) is the CLI
// front-end to the library package areyouhuman/internal/sitegen — the two
// share a name but not an identity, and tooling that lists packages by bare
// name (godoc indexes, phishlint's package walker) should key on the import
// paths above. The command generates a full-fledged fake website for a
// domain — the paper's 2-minute site-in-a-box pipeline — and writes it to a
// directory or a ready-to-upload .zip; all generation logic lives in the
// library package.
//
// Usage:
//
//	sitegen -domain garden-tools.com [-pages 30] [-seed 7] [-zip site.zip | -out ./site]
package main // import "areyouhuman/cmd/sitegen"

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"areyouhuman/internal/sitegen"
)

func main() {
	var (
		domain = flag.String("domain", "", "domain name to generate a site for (required)")
		pages  = flag.Int("pages", sitegen.DefaultPageCount, "number of pages")
		seed   = flag.Int64("seed", 0, "generation seed")
		zipOut = flag.String("zip", "", "write the site as a .zip to this path")
		dirOut = flag.String("out", "", "write the site files under this directory")
	)
	flag.Parse()
	if *domain == "" {
		fmt.Fprintln(os.Stderr, "sitegen: -domain is required")
		flag.Usage()
		os.Exit(2)
	}

	site := sitegen.Generate(*domain, sitegen.Config{PageCount: *pages, Seed: *seed})
	fmt.Printf("generated %d pages and %d images for %s\n", len(site.Pages), len(site.Images), site.Domain)

	if *zipOut != "" {
		f, err := os.Create(*zipOut)
		if err != nil {
			fatal(err)
		}
		if err := site.WriteZip(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *zipOut)
	}
	if *dirOut != "" {
		for path, page := range site.Pages {
			if err := writeFile(filepath.Join(*dirOut, filepath.FromSlash(strings.TrimPrefix(path, "/"))), []byte(page.HTML)); err != nil {
				fatal(err)
			}
		}
		for path, img := range site.Images {
			if err := writeFile(filepath.Join(*dirOut, filepath.FromSlash(strings.TrimPrefix(path, "/"))), img); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("wrote %d files under %s\n", len(site.Pages)+len(site.Images), *dirOut)
	}
	if *zipOut == "" && *dirOut == "" {
		for _, path := range site.Paths() {
			fmt.Printf("  %s — %s\n", path, site.Pages[path].Title)
		}
	}
}

func writeFile(path string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sitegen:", err)
	os.Exit(1)
}
