package main

// The -study mode: run the paper's 105-URL main experiment live and serve a
// dashboard at /debug/study fed by the run's lifecycle journal. The journal
// recorder streams each event line into a journal.Progress aggregator; the
// dashboard page subscribes over SSE and re-renders per-engine and
// per-technique tallies as the virtual two weeks play out.
//
// Wall-clock pacing (time.Sleep, time.Ticker) is fine here — this file is
// presentation, outside the simulation; the sim itself stays pure virtual
// time. While a study runs, the gateway does not route into the study's
// virtual internet: the world runs single-threaded on the study goroutine,
// and the dashboard observes it only through the journal stream.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"areyouhuman/internal/experiment"
	"areyouhuman/internal/journal"
)

// studyServer is the shared state behind the /debug/study endpoints.
type studyServer struct {
	progress *journal.Progress
	pace     time.Duration

	mu     sync.Mutex
	done   bool
	err    error
	report string
}

func newStudyServer(pace time.Duration) *studyServer {
	return &studyServer{progress: journal.NewProgress(), pace: pace}
}

// run executes the main study on this goroutine and records the outcome.
func (s *studyServer) run(world *experiment.World) {
	res, err := world.RunMain()
	// Close releases the scheduler and records Close-time metrics (the
	// per-shard event counters) into the registry /metrics serves; the
	// dashboard only reads the aggregates captured below.
	world.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.done = true
	s.err = err
	if err == nil {
		s.report = experiment.RenderTable2(res)
	}
}

// writer returns the io.Writer the journal streams into: it splits the
// stream back into lines, folds each into the progress aggregator, and
// paces playback so the dashboard is watchable.
func (s *studyServer) writer() *progressWriter {
	return &progressWriter{srv: s}
}

type progressWriter struct {
	srv *studyServer
	buf []byte
}

func (w *progressWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	for {
		i := bytes.IndexByte(w.buf, '\n')
		if i < 0 {
			return len(p), nil
		}
		line := w.buf[:i]
		if len(bytes.TrimSpace(line)) > 0 {
			if err := w.srv.progress.ObserveLine(line); err != nil {
				return 0, err
			}
		}
		w.buf = w.buf[i+1:]
		if w.srv.pace > 0 {
			time.Sleep(w.srv.pace)
		}
	}
}

// studyState is the JSON document /debug/study/state serves and the SSE
// stream repeats.
type studyState struct {
	journal.Snapshot
	Done   bool   `json:"done"`
	Error  string `json:"error,omitempty"`
	Report string `json:"report,omitempty"`
}

func (s *studyServer) state() studyState {
	st := studyState{Snapshot: s.progress.Snapshot()}
	s.mu.Lock()
	st.Done = s.done
	if s.err != nil {
		st.Error = s.err.Error()
	}
	st.Report = s.report
	s.mu.Unlock()
	return st
}

// ServeHTTP handles the /debug/study endpoint family.
func (s *studyServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/debug/study":
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, studyHTML)
	case "/debug/study/state":
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(s.state())
	case "/debug/study/events":
		s.serveSSE(w, r)
	default:
		http.NotFound(w, r)
	}
}

// serveSSE streams the study state as server-sent events, one snapshot per
// second, until the client disconnects (plus one final frame after the study
// completes).
func (s *studyServer) serveSSE(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	send := func() bool {
		st := s.state()
		data, err := json.Marshal(st)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
			return false
		}
		flusher.Flush()
		return !st.Done
	}
	if !send() {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
			if !send() {
				return
			}
		}
	}
}

const studyHTML = `<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>live study — are you human?</title>
<style>
body { font: 14px/1.5 ui-monospace, monospace; background: #111; color: #ddd; margin: 2em; }
h1 { font-size: 18px; } h2 { font-size: 15px; margin-top: 1.5em; }
table { border-collapse: collapse; margin-top: .5em; }
th, td { border: 1px solid #333; padding: 4px 10px; text-align: right; }
th:first-child, td:first-child { text-align: left; }
.big { font-size: 26px; margin-right: 1.5em; }
.dim { color: #888; } .on { color: #7c5; } .fault { color: #d95; }
pre { background: #1a1a1a; padding: 1em; overflow-x: auto; }
</style></head><body>
<h1>live study: 105 protected URLs, two virtual weeks</h1>
<p>
  <span class="big"><span id="detected">0</span><span class="dim">/</span><span id="urls">0</span> <span class="dim">detected</span></span>
  <span class="big" id="sim" class="dim"></span>
</p>
<p class="dim">stage <span id="stage">—</span> · <span id="events">0</span> journal events · <span id="status">running</span></p>
<h2>engines</h2>
<table id="engines"><thead><tr>
<th>engine</th><th>reports</th><th>visits</th><th>retries</th><th>listings</th><th>shared-in</th><th>sightings</th>
</tr></thead><tbody></tbody></table>
<h2>techniques</h2>
<table id="techs"><thead><tr>
<th>technique</th><th>deploys</th><th>payload serves</th><th>listings</th>
</tr></thead><tbody></tbody></table>
<div id="faultbox" style="display:none"><h2>fault windows</h2>
<table id="faults"><thead><tr>
<th>fault</th><th>kind</th><th>opens</th><th>closes</th><th>state</th>
</tr></thead><tbody></tbody></table>
<p class="dim"><span id="injections">0</span> injections fired</p></div>
<div id="reportbox" style="display:none"><h2>final table</h2><pre id="report"></pre></div>
<script>
function fill(id, rows, cols) {
  var tb = document.querySelector('#' + id + ' tbody'); tb.innerHTML = '';
  (rows || []).forEach(function (r) {
    var tr = document.createElement('tr');
    cols.forEach(function (c) {
      var td = document.createElement('td'); td.textContent = r[c]; tr.appendChild(td);
    });
    tb.appendChild(tr);
  });
}
var es = new EventSource('/debug/study/events');
es.onmessage = function (e) {
  var s = JSON.parse(e.data);
  document.getElementById('detected').textContent = s.detected;
  document.getElementById('urls').textContent = s.urls;
  document.getElementById('sim').textContent = s.sim ? s.sim.replace('T', ' ').replace('Z', '') : '';
  document.getElementById('stage').textContent = s.stage || '—';
  document.getElementById('events').textContent = s.events;
  fill('engines', s.engines, ['engine','reports','visits','retries','listings','shared','sightings']);
  fill('techs', s.techniques, ['technique','deploys','payload_serves','listings']);
  if (s.faults && s.faults.length) {
    document.getElementById('faultbox').style.display = '';
    fill('faults', s.faults.map(function (f) {
      return { fault: f.fault, kind: f.kind, open_at: f.open_at, close_at: f.close_at || '',
               state: f.active ? 'ACTIVE' : 'inactive' };
    }), ['fault','kind','open_at','close_at','state']);
    document.getElementById('injections').textContent = s.injections || 0;
  }
  if (s.done) {
    document.getElementById('status').textContent = s.error ? 'failed: ' + s.error : 'complete';
    if (s.report) {
      document.getElementById('reportbox').style.display = '';
      document.getElementById('report').textContent = s.report;
    }
    es.close();
  }
};
</script></body></html>
`
