// Command worldserve boots a simulated deployment — a fake website with a
// phishing page behind a chosen evasion technique, plus the CAPTCHA service
// — and serves the whole virtual internet on a real TCP address, routing
// requests by Host header. This lets you explore the paper's page states
// with curl or a real browser:
//
//	worldserve -addr :8080 -technique recaptcha &
//	curl -H 'Host: demo-site.com' http://127.0.0.1:8080/            # cover site
//	curl -H 'Host: demo-site.com' http://127.0.0.1:8080/<phish-path> # challenge page
//
// Virtual hostnames are listed at / for any unknown Host.
//
// Observability: the gateway itself answers /metrics (Prometheus text — live
// gateway, engine, and evasion serve-decision series) and /debug/pprof/* for
// profiling, so a scrape or a pprof session needs no Host header:
//
//	curl http://127.0.0.1:8080/metrics
//	go tool pprof http://127.0.0.1:8080/debug/pprof/profile?seconds=5
//
// Virtual hosts never use those reserved paths, so routing is unaffected.
//
// Live study mode: -study runs the paper's 105-URL main experiment in the
// background and serves a dashboard at /debug/study — per-engine and
// per-technique progress streamed over SSE straight from the run's lifecycle
// journal, the final Table 2 when the virtual two weeks complete:
//
//	worldserve -addr :8080 -study
//	open http://127.0.0.1:8080/debug/study      # or curl /debug/study/state
//
// -study-pace throttles journal playback (wall-clock pause per event) so the
// run is watchable; -traffic-scale sizes the crawler fleets. The study world
// runs single-threaded on its own goroutine, so in this mode the gateway does
// not route Host-header requests into its virtual internet.
//
// Load mode: -load N boots the deployment, serves it on a real TCP listener
// (-addr may end in :0 for an ephemeral port), and replays N victim requests
// against it from an in-process worker pool (-load-workers): the request mix
// derives from the "paper" victim population via the positional planner, so
// careful victims fetch only the cover page while the rest go for the
// phishing path. Latencies land in a telemetry histogram; the run prints a
// one-line summary (requests/sec, p50/p99, 2xx count) and, with -bench-out,
// writes a BENCH_serve.json record — the repo's live-serving benchmark:
//
//	worldserve -addr 127.0.0.1:0 -load 5000 -load-workers 8 -bench-out BENCH_serve.json
//
// -load does not compose with -study (study mode does not route virtual
// hosts).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"areyouhuman/internal/evasion"
	"areyouhuman/internal/experiment"
	"areyouhuman/internal/journal"
	"areyouhuman/internal/phishkit"
	"areyouhuman/internal/simnet"
	"areyouhuman/internal/telemetry"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "TCP address to listen on")
		techFlag  = flag.String("technique", "recaptcha", "evasion technique: none, alertbox, session, recaptcha")
		brandFlag = flag.String("brand", "paypal", "target brand: paypal, facebook, gmail")
		domain    = flag.String("domain", "demo-site.com", "virtual domain for the deployment")
		obs       = flag.Bool("obs", true, "serve /metrics and /debug/pprof on the gateway")
		study     = flag.Bool("study", false, "run the 105-URL main study live and serve /debug/study")
		pace      = flag.Duration("study-pace", 5*time.Millisecond, "wall-clock pause per journal event in -study mode (0 = full speed)")
		scale     = flag.Float64("traffic-scale", 0.02, "crawler fleet scale in -study mode")
		shardW    = flag.Int("shard-workers", 0, "scheduler workers over host-keyed shards in -study mode (0 = classic serial scheduler); output is identical for every value")
		load      = flag.Int("load", 0, "replay N population-derived victim requests against the live gateway, print req/sec and p50/p99, then exit (0 = serve forever)")
		loadW     = flag.Int("load-workers", 8, "concurrent client workers for -load")
		loadSeed  = flag.Int64("load-seed", 21, "seed for the -load victim planner")
		benchOut  = flag.String("bench-out", "", "write the -load results as a BENCH_serve.json record to this file")
	)
	flag.Parse()

	if *shardW < 0 {
		fmt.Fprintf(os.Stderr, "worldserve: -shard-workers must be >= 0, got %d\n", *shardW)
		os.Exit(2)
	}
	if *load < 0 || *loadW < 1 {
		fmt.Fprintf(os.Stderr, "worldserve: -load must be >= 0 and -load-workers >= 1, got %d and %d\n", *load, *loadW)
		os.Exit(2)
	}
	if *study {
		if *load > 0 {
			fmt.Fprintln(os.Stderr, "worldserve: -load does not compose with -study (study mode does not route virtual hosts)")
			os.Exit(2)
		}
		runStudyMode(*addr, *obs, *pace, *scale, *shardW)
		return
	}

	technique, err := evasion.Parse(*techFlag)
	if err != nil {
		log.Fatal("worldserve: ", err)
	}
	var brand phishkit.Brand
	switch strings.ToLower(*brandFlag) {
	case "paypal":
		brand = phishkit.PayPal
	case "facebook":
		brand = phishkit.Facebook
	case "gmail":
		brand = phishkit.Gmail
	default:
		fmt.Fprintf(os.Stderr, "worldserve: unknown brand %q\n", *brandFlag)
		os.Exit(2)
	}

	var set *telemetry.Set
	if *obs {
		set = &telemetry.Set{Metrics: telemetry.NewRegistry()}
	}
	world := experiment.NewWorld(experiment.Config{TrafficScale: 0.005, Telemetry: set})
	deployment, err := world.Deploy(*domain, experiment.MountSpec{Brand: brand, Technique: technique})
	if err != nil {
		log.Fatal("worldserve: ", err)
	}
	phishURL := deployment.Mounts[0].URL

	gateway := newGateway(world.Net, set)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal("worldserve: ", err)
	}
	bound := ln.Addr().String()
	log.Printf("serving virtual internet on %s", bound)
	log.Printf("deployment: %s kit behind %s", brand, technique)
	log.Printf("phishing URL (virtual): %s", phishURL)
	log.Printf("try: curl -H 'Host: %s' 'http://%s%s'", *domain, bound, pathOf(phishURL))
	if *obs {
		log.Printf("observability: curl 'http://%s/metrics'  (pprof at /debug/pprof/)", bound)
	}
	if *load > 0 {
		go func() {
			// The listener closes when main returns; the serve error at that
			// point is shutdown, not a failure.
			_ = http.Serve(ln, gateway)
		}()
		defer ln.Close()
		if err := runLoad(bound, loadConfig{
			requests:  *load,
			workers:   *loadW,
			seed:      *loadSeed,
			domain:    *domain,
			phishPath: pathOf(phishURL),
			technique: technique.String(),
			brand:     strings.ToLower(*brandFlag),
			benchOut:  *benchOut,
			set:       set,
		}); err != nil {
			log.Fatal("worldserve: ", err)
		}
		return
	}
	if err := http.Serve(ln, gateway); err != nil {
		log.Fatal("worldserve: ", err)
	}
}

// runStudyMode starts the main experiment on a background goroutine, feeding
// its lifecycle journal into the /debug/study dashboard, and serves only the
// observability endpoints (the study world is single-threaded, so its virtual
// hosts are not routable while it runs).
func runStudyMode(addr string, obs bool, pace time.Duration, scale float64, shardWorkers int) {
	var set *telemetry.Set
	if obs {
		set = &telemetry.Set{Metrics: telemetry.NewRegistry()}
	}
	srv := newStudyServer(pace)
	world := experiment.NewWorld(experiment.Config{
		TrafficScale: scale,
		Telemetry:    set,
		Journal:      journal.NewWriter(srv.writer()),
		ShardWorkers: shardWorkers,
	})
	go srv.run(world)

	gateway := newGateway(nil, set)
	gateway.study = srv
	log.Printf("serving live study on %s", addr)
	log.Printf("dashboard: http://%s/debug/study  (state: /debug/study/state, SSE: /debug/study/events)", addr)
	if obs {
		log.Printf("observability: curl 'http://%s/metrics'  (pprof at /debug/pprof/)", addr)
	}
	if err := http.ListenAndServe(addr, gateway); err != nil {
		log.Fatal("worldserve: ", err)
	}
}

func pathOf(rawURL string) string {
	if i := strings.Index(rawURL, "://"); i >= 0 {
		rest := rawURL[i+3:]
		if j := strings.IndexByte(rest, '/'); j >= 0 {
			return rest[j:]
		}
	}
	return "/"
}

// gateway routes real TCP requests into the virtual internet by Host header,
// reserving /metrics, /debug/pprof, and (in study mode) /debug/study for the
// observability endpoints.
type gateway struct {
	net      *simnet.Internet // nil in study mode: no host routing
	obs      *http.ServeMux   // nil when observability is off
	study    *studyServer     // nil outside -study mode
	requests func(host string) *telemetry.Counter
}

func newGateway(net *simnet.Internet, set *telemetry.Set) *gateway {
	g := &gateway{net: net}
	if m := set.M(); m != nil {
		m.Describe("phish_gateway_requests_total", "Requests routed by the worldserve gateway, by virtual host.")
		g.requests = func(host string) *telemetry.Counter {
			return m.Counter("phish_gateway_requests_total", "host", host)
		}
		g.obs = http.NewServeMux()
		g.obs.Handle("/metrics", m.Handler())
		g.obs.HandleFunc("/debug/pprof/", pprof.Index)
		g.obs.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		g.obs.HandleFunc("/debug/pprof/profile", pprof.Profile)
		g.obs.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		g.obs.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return g
}

func (g *gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if g.obs != nil && (r.URL.Path == "/metrics" || strings.HasPrefix(r.URL.Path, "/debug/pprof")) {
		g.obs.ServeHTTP(w, r)
		return
	}
	if g.study != nil && strings.HasPrefix(r.URL.Path, "/debug/study") {
		g.study.ServeHTTP(w, r)
		return
	}
	if g.net == nil {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, "<h1>live study</h1><p>the virtual internet is busy running the study; watch it at <a href=\"/debug/study\">/debug/study</a>.</p>")
		return
	}
	hostname := r.Host
	if i := strings.LastIndexByte(hostname, ':'); i >= 0 {
		hostname = hostname[:i]
	}
	host, ok := g.net.Lookup(hostname)
	if !ok {
		if g.requests != nil {
			g.requests("unknown").Inc()
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintf(w, "<h1>virtual internet</h1><p>unknown host %q; known hosts:</p><ul>", hostname)
		for _, name := range g.net.Hosts() {
			fmt.Fprintf(w, "<li>%s</li>", name)
		}
		fmt.Fprint(w, "</ul><p>route with: curl -H 'Host: &lt;name&gt;' ...</p>")
		if g.obs != nil {
			fmt.Fprint(w, "<p>observability: <a href=\"/metrics\">/metrics</a>, <a href=\"/debug/pprof/\">/debug/pprof/</a></p>")
		}
		return
	}
	if g.requests != nil {
		g.requests(hostname).Inc()
	}
	if host.Down {
		http.Error(w, "host has been taken down", http.StatusServiceUnavailable)
		return
	}
	host.Handler.ServeHTTP(w, r)
}
