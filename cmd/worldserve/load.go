package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"areyouhuman/internal/population"
	"areyouhuman/internal/telemetry"
)

// loadConfig parameterises a -load replay: a worker-pool HTTP client fires
// population-derived victim requests at the live gateway and records the
// latency distribution.
type loadConfig struct {
	requests  int
	workers   int
	seed      int64
	domain    string // Host header for every request
	phishPath string // the deployment's phishing path
	technique string
	brand     string
	benchOut  string // BENCH_serve.json destination ("" = print only)
	set       *telemetry.Set
}

// latencyBuckets spans 10µs to ~160s in powers of two — fine enough that the
// interpolated p50/p99 are meaningful for an in-process gateway.
func latencyBuckets() []float64 { return telemetry.ExpBuckets(1e-5, 2, 24) }

// runLoad replays victim traffic against the gateway at addr. The request
// mix derives from the "paper" population via the positional planner: each
// request i is victim i's first visit — careful victims inspect the URL and
// only fetch the cover page, everyone else goes straight for the phishing
// path. Latencies land in a telemetry histogram; the summary goes to stdout
// and, when benchOut is set, to a BENCH_serve.json record.
func runLoad(addr string, cfg loadConfig) error {
	spec, err := population.Preset("paper")
	if err != nil {
		return err
	}
	spec.Size = cfg.requests
	spec = spec.WithDefaults()
	pl := population.NewPlanner(cfg.seed, spec, 1, 1)

	reg := cfg.set.M()
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	reg.Describe("phish_serve_latency_seconds", "Gateway request latency observed by the worldserve load client.")
	hist := reg.Histogram("phish_serve_latency_seconds", latencyBuckets())

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.workers,
		MaxIdleConnsPerHost: cfg.workers,
	}}
	var (
		ok2xx  atomic.Int64
		failed atomic.Int64
		wg     sync.WaitGroup
		jobs   = make(chan int, cfg.workers)
	)
	start := time.Now()
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				path := cfg.phishPath
				if v := pl.At(i); pl.Spots(i, 0, v.Cohort) {
					path = "/" // inspected the URL, only ever saw the cover site
				}
				req, err := http.NewRequest("GET", "http://"+addr+path, nil)
				if err != nil {
					failed.Add(1)
					continue
				}
				req.Host = cfg.domain
				t0 := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					failed.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				hist.Observe(time.Since(t0).Seconds())
				if resp.StatusCode >= 200 && resp.StatusCode < 300 {
					ok2xx.Add(1)
				}
			}
		}()
	}
	for i := 0; i < cfg.requests; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	seconds := time.Since(start).Seconds()

	res := serveResults{
		Requests:       cfg.requests,
		Seconds:        round3(seconds),
		RequestsPerSec: round1(float64(cfg.requests) / seconds),
		P50Ms:          round3(hist.Quantile(0.50) * 1000),
		P99Ms:          round3(hist.Quantile(0.99) * 1000),
		Status2xx:      ok2xx.Load(),
		Failed:         failed.Load(),
	}
	fmt.Printf("serve-load: %d requests (%d workers), %.1f req/sec, p50 %.3f ms, p99 %.3f ms, %d 2xx, %d failed\n",
		res.Requests, cfg.workers, res.RequestsPerSec, res.P50Ms, res.P99Ms, res.Status2xx, res.Failed)
	if cfg.benchOut == "" {
		return nil
	}
	return writeBenchRecord(cfg, res)
}

// serveResults is the measured half of the BENCH_serve.json record.
type serveResults struct {
	Requests       int     `json:"requests"`
	Seconds        float64 `json:"seconds"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	P50Ms          float64 `json:"p50_ms"`
	P99Ms          float64 `json:"p99_ms"`
	Status2xx      int64   `json:"status_2xx"`
	Failed         int64   `json:"failed"`
}

// benchRecord mirrors the repo's other BENCH_*.json files (benchmark,
// command, date, host, config, results, note).
type benchRecord struct {
	Benchmark string         `json:"benchmark"`
	Command   string         `json:"command"`
	Date      string         `json:"date"`
	Host      benchHost      `json:"host"`
	Config    map[string]any `json:"config"`
	Results   serveResults   `json:"results"`
	Note      string         `json:"note"`
}

type benchHost struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	Cores      int    `json:"cores"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

func writeBenchRecord(cfg loadConfig, res serveResults) error {
	rec := benchRecord{
		Benchmark: "worldserve-load",
		Command: fmt.Sprintf("worldserve -technique %s -brand %s -load %d -load-workers %d",
			cfg.technique, cfg.brand, cfg.requests, cfg.workers),
		Date: time.Now().Format("2006-01-02"),
		Host: benchHost{
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			Cores:      runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
		Config: map[string]any{
			"technique":  cfg.technique,
			"brand":      cfg.brand,
			"domain":     cfg.domain,
			"workers":    cfg.workers,
			"seed":       cfg.seed,
			"population": "paper",
		},
		Results: res,
		Note: "Live-gateway load replay: population-derived victim requests (paper preset, positional planner) " +
			"over real TCP against the worldserve gateway, latencies from the phish_serve_latency_seconds " +
			"telemetry histogram (p50/p99 by PromQL-style interpolation). Client and server share the process, " +
			"so this measures the full serve path, not network RTT.",
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(cfg.benchOut, append(data, '\n'), 0o644)
}

func round1(v float64) float64 { return float64(int64(v*10+0.5)) / 10 }

func round3(v float64) float64 { return float64(int64(v*1000+0.5)) / 1000 }
