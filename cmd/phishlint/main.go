// Command phishlint runs the determinism lint suite of internal/lint over
// this module — the compile-time half of the bit-identity guarantees the
// replica, cache, and chaos tests check at run time (DESIGN.md §11).
//
// Usage:
//
//	go run ./cmd/phishlint ./...
//	go run ./cmd/phishlint -json findings.json ./internal/... ./cmd/...
//
// Patterns are package directories, with the usual `dir/...` recursion; the
// default is `./...` from the current directory. Exit status is 0 when the
// tree is clean, 1 when any finding is reported, 2 when a package fails to
// load. Findings print one per line as file:line:col: analyzer: message;
// -json additionally writes the machine-readable findings array to the given
// path ("-" for stdout), which CI uploads as a build artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"areyouhuman/internal/lint"
)

func main() {
	jsonPath := flag.String("json", "", "write findings as a JSON array to this `path` (\"-\" for stdout)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: phishlint [-json path] [packages]\n\npackages are directories, optionally with a /... suffix (default ./...)\n\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\nanalyzers:\n")
		for _, a := range lint.Analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	os.Exit(run(flag.Args(), *jsonPath))
}

func run(patterns []string, jsonPath string) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "phishlint:", err)
		return 2
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "phishlint:", err)
		return 2
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, err := resolve(loader, cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "phishlint:", err)
		return 2
	}
	var findings []lint.Finding
	for _, tgt := range targets {
		pkg, err := loader.Load(tgt.Dir, tgt.Path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "phishlint:", err)
			return 2
		}
		findings = append(findings, lint.RunAnalyzers(pkg, lint.Analyzers)...)
	}
	for i := range findings {
		findings[i].File = relPath(cwd, findings[i].File)
		findings[i].Pos.Filename = findings[i].File
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if jsonPath != "" {
		if err := writeJSON(jsonPath, findings); err != nil {
			fmt.Fprintln(os.Stderr, "phishlint:", err)
			return 2
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "phishlint: %d finding(s) in %d package(s)\n", len(findings), len(targets))
		return 1
	}
	return 0
}

// resolve expands pattern arguments into package targets. `dir/...` walks
// recursively; a plain directory is a single package.
func resolve(loader *lint.Loader, cwd string, patterns []string) ([]lint.Target, error) {
	seen := map[string]bool{}
	var out []lint.Target
	add := func(ts ...lint.Target) {
		for _, t := range ts {
			if !seen[t.Path] {
				seen[t.Path] = true
				out = append(out, t)
			}
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			if rest == "" || rest == "." {
				rest = cwd
			}
			ts, err := lint.WalkPackages(loader, rest)
			if err != nil {
				return nil, err
			}
			add(ts...)
			continue
		}
		abs, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(loader.ModuleRoot, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("package %s is outside module %s", pat, loader.ModulePath)
		}
		path := loader.ModulePath
		if rel != "." {
			path += "/" + filepath.ToSlash(rel)
		}
		add(lint.Target{Dir: abs, Path: path})
	}
	return out, nil
}

func relPath(cwd, path string) string {
	if rel, err := filepath.Rel(cwd, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}

func writeJSON(path string, findings []lint.Finding) error {
	if findings == nil {
		findings = []lint.Finding{} // encode as [], not null
	}
	data, err := json.MarshalIndent(findings, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
