// Command phishlint runs the determinism lint suite of internal/lint over
// this module — the compile-time half of the bit-identity guarantees the
// replica, cache, and chaos tests check at run time (DESIGN.md §11, §16).
//
// Usage:
//
//	go run ./cmd/phishlint ./...
//	go run ./cmd/phishlint -json findings.json -sarif findings.sarif ./internal/... ./cmd/...
//	go run ./cmd/phishlint -parallel 8 -time ./...
//
// Patterns are package directories, with the usual `dir/...` recursion; the
// default is `./...` from the current directory. The whole module is always
// loaded and analyzed — the interprocedural analyzers need every call chain
// — but findings are reported only for the requested packages. Exit status
// is 0 when the tree is clean, 1 when any finding is reported, 2 when a
// package fails to load.
//
// Findings print one per line as file:line:col: analyzer: message; -json
// writes the machine-readable findings array to the given path ("-" for
// stdout) and -sarif writes the same findings as a SARIF 2.1.0 log, both
// uploaded by CI as build artifacts. -parallel bounds analysis worker
// goroutines (0 = GOMAXPROCS); it changes wall-clock only — findings are
// globally sorted, so every output is byte-identical for any value. -time
// prints per-analyzer wall-clock durations to stderr, keeping the artifact
// outputs stable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"areyouhuman/internal/lint"
)

// options carries the driver flags.
type options struct {
	jsonPath  string
	sarifPath string
	parallel  int
	timing    bool
}

func main() {
	var opts options
	flag.StringVar(&opts.jsonPath, "json", "", "write findings as a JSON array to this `path` (\"-\" for stdout)")
	flag.StringVar(&opts.sarifPath, "sarif", "", "write findings as a SARIF 2.1.0 log to this `path` (\"-\" for stdout)")
	flag.IntVar(&opts.parallel, "parallel", 0, "analysis worker goroutines (0 = GOMAXPROCS); output is identical for any value")
	flag.BoolVar(&opts.timing, "time", false, "print per-analyzer wall-clock durations to stderr")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: phishlint [-json path] [-sarif path] [-parallel n] [-time] [packages]\n\npackages are directories, optionally with a /... suffix (default ./...)\n\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\nanalyzers:\n")
		for _, a := range lint.Analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	os.Exit(run(flag.Args(), opts))
}

func run(patterns []string, opts options) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "phishlint:", err)
		return 2
	}
	// The interprocedural analyzers need the whole module loaded regardless
	// of which packages were requested: a summary for a helper outside the
	// targets still decides findings inside them.
	module, err := lint.LoadModule(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "phishlint:", err)
		return 2
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, err := resolve(module.Loader, cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "phishlint:", err)
		return 2
	}
	roots := make([]*lint.Package, 0, len(targets))
	for _, tgt := range targets {
		pkg := module.Package(tgt.Path)
		if pkg == nil {
			// The module walk skips testdata/ trees, but an explicitly
			// named fixture directory is still a valid target — load it
			// standalone so the sanity drives over
			// internal/lint/testdata/src keep working.
			pkg, err = module.AddPackage(tgt.Dir, tgt.Path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "phishlint: no loadable package at %s: %v\n", tgt.Path, err)
				return 2
			}
		}
		roots = append(roots, pkg)
	}
	findings, timings := module.Run(lint.Analyzers, opts.parallel, roots)
	for i := range findings {
		findings[i].File = relPath(cwd, findings[i].File)
		findings[i].Pos.Filename = findings[i].File
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if opts.timing {
		for _, t := range timings {
			fmt.Fprintf(os.Stderr, "phishlint: %-12s %s\n", t.Name, t.Duration.Round(time.Millisecond))
		}
	}
	if opts.jsonPath != "" {
		if err := writeJSON(opts.jsonPath, findings); err != nil {
			fmt.Fprintln(os.Stderr, "phishlint:", err)
			return 2
		}
	}
	if opts.sarifPath != "" {
		data, err := lint.SARIF(lint.Analyzers, findings)
		if err == nil {
			err = writeFile(opts.sarifPath, data)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "phishlint:", err)
			return 2
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "phishlint: %d finding(s) in %d package(s)\n", len(findings), len(roots))
		return 1
	}
	return 0
}

// resolve expands pattern arguments into package targets. `dir/...` walks
// recursively; a plain directory is a single package.
func resolve(loader *lint.Loader, cwd string, patterns []string) ([]lint.Target, error) {
	seen := map[string]bool{}
	var out []lint.Target
	add := func(ts ...lint.Target) {
		for _, t := range ts {
			if !seen[t.Path] {
				seen[t.Path] = true
				out = append(out, t)
			}
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			if rest == "" || rest == "." {
				rest = cwd
			}
			ts, err := lint.WalkPackages(loader, rest)
			if err != nil {
				return nil, err
			}
			add(ts...)
			continue
		}
		abs, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(loader.ModuleRoot, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("package %s is outside module %s", pat, loader.ModulePath)
		}
		path := loader.ModulePath
		if rel != "." {
			path += "/" + filepath.ToSlash(rel)
		}
		add(lint.Target{Dir: abs, Path: path})
	}
	return out, nil
}

func relPath(cwd, path string) string {
	if rel, err := filepath.Rel(cwd, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}

func writeJSON(path string, findings []lint.Finding) error {
	if findings == nil {
		findings = []lint.Finding{} // encode as [], not null
	}
	data, err := json.MarshalIndent(findings, "", "  ")
	if err != nil {
		return err
	}
	return writeFile(path, append(data, '\n'))
}

func writeFile(path string, data []byte) error {
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
