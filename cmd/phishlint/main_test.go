package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"areyouhuman/internal/lint"
)

// TestRunParallelOutputByteIdentical drives the real binary entry point over
// the whole module at different -parallel values: the clean-tree exit status
// and the -json artifact must be byte-identical — CI diffs exactly this.
func TestRunParallelOutputByteIdentical(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Dir(filepath.Dir(cwd)) // cmd/phishlint -> module root
	if err := os.Chdir(root); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(cwd); err != nil {
			t.Errorf("restore cwd: %v", err)
		}
	}()

	dir := t.TempDir()
	outputs := make(map[int][]byte)
	for _, parallel := range []int{1, 4} {
		path := filepath.Join(dir, "findings.json")
		code := run([]string{"./..."}, options{jsonPath: path, parallel: parallel})
		if code != 0 {
			t.Fatalf("phishlint -parallel %d exited %d; the tree must be lint-clean", parallel, code)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read -json output: %v", err)
		}
		outputs[parallel] = data
	}
	if !bytes.Equal(outputs[1], outputs[4]) {
		t.Errorf("-json output differs between -parallel 1 and -parallel 4:\n%s\nvs\n%s", outputs[1], outputs[4])
	}
}

// TestRunFixtureDirectory pins the documented sanity drive: pointing the
// driver at a testdata fixture directory — which the module walk skips —
// must still load that package standalone and report its findings.
func TestRunFixtureDirectory(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Dir(filepath.Dir(cwd)) // cmd/phishlint -> module root
	if err := os.Chdir(root); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(cwd); err != nil {
			t.Errorf("restore cwd: %v", err)
		}
	}()

	path := filepath.Join(t.TempDir(), "findings.json")
	code := run([]string{"./internal/lint/testdata/src/detrand"}, options{jsonPath: path})
	if code != 1 {
		t.Fatalf("phishlint on the detrand fixture exited %d, want 1 (findings present)", code)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read -json output: %v", err)
	}
	var findings []lint.Finding
	if err := json.Unmarshal(data, &findings); err != nil {
		t.Fatalf("parse -json output: %v", err)
	}
	if len(findings) != 6 {
		t.Errorf("detrand fixture produced %d findings, want 6:\n%s", len(findings), data)
	}
	for _, f := range findings {
		if f.Analyzer != "detrand" {
			t.Errorf("unexpected %s finding in the detrand fixture: %s", f.Analyzer, f.Message)
		}
	}
}
