// Command phishtrace analyses URL lifecycle journals recorded by phishfarm
// -journal (or areyouhuman.WithJournal): per-URL timelines, paper-style
// detection and lag summaries, causal-consistency checks, Chrome trace
// export, and run-to-run diffing.
//
// Usage:
//
//	phishtrace summary   journal.jsonl [-stage main] [-replica 0]
//	phishtrace timeline  journal.jsonl -url <url|substring> [-stage S] [-replica K]
//	phishtrace anomalies journal.jsonl
//	phishtrace chrome    journal.jsonl [-o trace.json]
//	phishtrace diff      a.jsonl b.jsonl
//
// summary renders each stage section (or just -stage/-replica) in the
// paper's Table 2 shape — detected/total per (engine, brand, technique) —
// plus the report→listing lag distribution per engine, reconstructed
// entirely from the journal.
//
// timeline prints the full lifecycle of every URL matching -url (substring
// match): deploy, report, deciding crawls with verdicts, retries, payload
// serves, listings, sightings, and the final outcome.
//
// anomalies runs the causal checks — first-party listings with no
// phish-verdict visit, reports for URLs never deployed, activity on hosts
// after their takedown — and exits 1 when any are flagged. A journal from a
// healthy run has none.
//
// chrome exports the journal in the Chrome trace-event format; load the
// output in Perfetto (ui.perfetto.dev) or chrome://tracing. One process per
// replica, one thread per URL/stage/fault span.
//
// diff compares two journals by URL outcome (listing engine, lag, visit
// counts) and event-kind totals, and exits 1 when they disagree — the tool
// behind the journal-identity CI check: two runs with the same seed must
// produce byte-identical journals whatever -parallel was.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"areyouhuman/internal/journal"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "summary":
		err = cmdSummary(args)
	case "timeline":
		err = cmdTimeline(args)
	case "anomalies":
		err = cmdAnomalies(args)
	case "chrome":
		err = cmdChrome(args)
	case "diff":
		err = cmdDiff(args)
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "phishtrace: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "phishtrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  phishtrace summary   journal.jsonl [-stage S] [-replica K]
  phishtrace timeline  journal.jsonl -url <url|substring> [-stage S] [-replica K]
  phishtrace anomalies journal.jsonl
  phishtrace chrome    journal.jsonl [-o trace.json]
  phishtrace diff      a.jsonl b.jsonl
`)
}

// loadEvents reads one journal file ("-" = stdin).
func loadEvents(path string) ([]journal.Event, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	events, err := journal.ReadEvents(bufio.NewReaderSize(r, 1<<20))
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	return events, nil
}

// parseJournalArgs splits a subcommand's arguments into the positional
// journal paths and its flags: flags may come before or after the paths.
func parseJournalArgs(fs *flag.FlagSet, args []string, nPaths int) ([]string, error) {
	var paths []string
	rest := args
	for len(rest) > 0 {
		if err := fs.Parse(rest); err != nil {
			return nil, err
		}
		rest = fs.Args()
		if len(rest) == 0 {
			break
		}
		paths = append(paths, rest[0])
		rest = rest[1:]
	}
	if len(paths) != nPaths {
		return nil, fmt.Errorf("expected %d journal file(s), got %d", nPaths, len(paths))
	}
	return paths, nil
}

func cmdSummary(args []string) error {
	fs := flag.NewFlagSet("summary", flag.ContinueOnError)
	stage := fs.String("stage", "", "only this stage (default: every section)")
	replica := fs.Int("replica", -1, "only this replica (default: every replica)")
	paths, err := parseJournalArgs(fs, args, 1)
	if err != nil {
		return err
	}
	events, err := loadEvents(paths[0])
	if err != nil {
		return err
	}
	st := journal.Analyze(events)
	printed := 0
	for _, sec := range st.Sections {
		if *stage != "" && sec.Stage != *stage {
			continue
		}
		if *replica >= 0 && sec.Replica != *replica {
			continue
		}
		if len(sec.Timelines) == 0 {
			continue
		}
		if printed > 0 {
			fmt.Println()
		}
		fmt.Print(sec.SummaryTable())
		printed++
	}
	if printed == 0 {
		return fmt.Errorf("no matching stage sections in %s", paths[0])
	}
	return nil
}

func cmdTimeline(args []string) error {
	fs := flag.NewFlagSet("timeline", flag.ContinueOnError)
	url := fs.String("url", "", "URL (or substring) to print timelines for")
	stage := fs.String("stage", "", "only this stage")
	replica := fs.Int("replica", -1, "only this replica")
	paths, err := parseJournalArgs(fs, args, 1)
	if err != nil {
		return err
	}
	if *url == "" {
		return fmt.Errorf("timeline requires -url")
	}
	events, err := loadEvents(paths[0])
	if err != nil {
		return err
	}
	st := journal.Analyze(events)
	matched := 0
	for _, sec := range st.Sections {
		if *stage != "" && sec.Stage != *stage {
			continue
		}
		if *replica >= 0 && sec.Replica != *replica {
			continue
		}
		for _, tl := range sec.Timelines {
			if !strings.Contains(tl.URL, *url) {
				continue
			}
			if matched > 0 {
				fmt.Println()
			}
			fmt.Print(tl.TimelineText())
			matched++
		}
	}
	if matched == 0 {
		return fmt.Errorf("no URL matching %q in %s", *url, paths[0])
	}
	return nil
}

func cmdAnomalies(args []string) error {
	fs := flag.NewFlagSet("anomalies", flag.ContinueOnError)
	paths, err := parseJournalArgs(fs, args, 1)
	if err != nil {
		return err
	}
	events, err := loadEvents(paths[0])
	if err != nil {
		return err
	}
	anomalies := journal.Analyze(events).Anomalies()
	if len(anomalies) == 0 {
		fmt.Printf("no anomalies: %d events, causal chains consistent\n", len(events))
		return nil
	}
	for _, a := range anomalies {
		fmt.Println(a)
	}
	return fmt.Errorf("%d anomalies flagged", len(anomalies))
}

func cmdChrome(args []string) error {
	fs := flag.NewFlagSet("chrome", flag.ContinueOnError)
	out := fs.String("o", "", "output file (default stdout)")
	paths, err := parseJournalArgs(fs, args, 1)
	if err != nil {
		return err
	}
	events, err := loadEvents(paths[0])
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		bw := bufio.NewWriterSize(f, 1<<20)
		defer bw.Flush()
		w = bw
	}
	return journal.WriteChromeTrace(w, events)
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	paths, err := parseJournalArgs(fs, args, 2)
	if err != nil {
		return err
	}
	a, err := loadEvents(paths[0])
	if err != nil {
		return err
	}
	b, err := loadEvents(paths[1])
	if err != nil {
		return err
	}
	d := journal.Diff(a, b)
	fmt.Print(d.Render(paths[0], paths[1]))
	if !d.Identical() {
		return fmt.Errorf("journals differ")
	}
	return nil
}
