// Command phishfarm runs the paper's study end to end and prints the
// regenerated tables.
//
// Usage:
//
//	phishfarm [-stage all|preliminary|main|extensions|ablations|funnel|chaos]
//	          [-campaign N] [-provider free|dedicated]
//	          [-population uniform|paper|lain2025] [-victims N]
//	          [-seed N] [-replicas N] [-parallel P] [-shard-workers W]
//	          [-traffic-scale F] [-main-traffic N] [-nocache]
//	          [-chaos plan.json] [-chaos-preset flaky|outage|degraded]
//	          [-json out.json] [-trace out.jsonl] [-journal out.jsonl]
//	          [-metrics out.prom]
//	          [-cpuprofile out.pprof] [-memprofile out.pprof] [-v]
//
// The default stage runs everything: Table 1 (preliminary test), Table 2
// (main experiment), Table 3 (extensions), the headline claims comparison,
// the ablation studies, and the paper-scale drop-catch funnel.
//
// Fault injection: -chaos loads a declarative fault plan (see internal/chaos)
// and -chaos-preset selects a built-in one; either subjects the whole run to
// deterministic faults — network resets and latency, DNS failures, engine
// outages and slowdowns, stale feeds, flapping listings — reproducible from
// (seed, plan) alone. -stage chaos runs the comparison study instead: the
// main experiment once clean and once per preset, reporting detection-rate
// and timing deltas.
//
// Campaigns: -campaign N replaces the classic stages with a paper-scale
// streaming study of N phishing URLs (see internal/campaign) deployed in
// waves on -provider hosting — "free" (shared free-hosting apexes with
// shared-IP reputation and provider abuse sweeps, the default) or
// "dedicated" (one registrable domain per URL). The deterministic campaign
// table goes to stdout — byte-identical for every -shard-workers value —
// while wall-clock figures (URLs/sec, peak heap) go to stderr under -v.
//
// Populations: -population <preset> replaces the classic stages with a
// heterogeneous-victim exposure study (see internal/population): cohorts
// with distinct URL-inspection skill, susceptibility, reporting propensity,
// and visit cadence visit evasion-protected lures, and their reports feed
// community verification. -victims N sizes the population (0 keeps the
// preset default). Victims derive positionally from -seed, so the table and
// journal are byte-identical for every -shard-workers value and memory is
// flat to 1M+ victims. -population is mutually exclusive with -campaign and
// with -traffic-scale (the population is the victim-traffic model); flag
// conflicts are rejected with typed areyouhuman errors.
//
// The run is cancellable: SIGINT stops the simulation within a bounded
// number of events and exits with the interruption error.
//
// With -replicas N (N > 1) the full study runs N times in fully independent
// worlds seeded by splitting -seed, across -parallel workers (default
// GOMAXPROCS), and prints mean/min/max/CI95 aggregates over the replicas.
// Replica 0 always reproduces the single-run output for the same -seed, and
// results are bit-identical for any -parallel value. -replicas 1 is exactly
// the plain single run.
//
// -shard-workers W (default 1) drains each world's event queue with W workers
// over host-keyed shards in lock-stepped virtual-time windows (see
// internal/simclock). Output — tables, journal, metrics — is byte-identical
// for every W >= 1, so the flag affects wall time only; W < 1 is rejected.
//
// Observability: -trace streams every telemetry record (virtual-time spans
// and events) as JSON Lines, -journal streams the URL lifecycle journal
// (deploys, reports, deciding crawls, listings, sightings, fault injections
// — virtual-clock stamped, causally linked, bit-identical for any -parallel;
// see internal/journal and cmd/phishtrace), -metrics snapshots the metrics
// registry in Prometheus text format after every stage, and -v narrates
// stage progress with wall times and headline counters on stderr.
//
// Performance: -cpuprofile and -memprofile write pprof profiles covering the
// whole run (the heap profile is taken at exit, after runtime.GC), and
// -nocache disables the visit-path caches (DOM, scriptlet, render, site, kit)
// — results are bit-identical either way, so the flag exists to measure the
// caches and to serve as an escape hatch, not to change behaviour.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"areyouhuman"
	"areyouhuman/internal/campaign"
	"areyouhuman/internal/chaos"
	"areyouhuman/internal/core"
	"areyouhuman/internal/experiment"
	"areyouhuman/internal/journal"
	"areyouhuman/internal/population"
	"areyouhuman/internal/simclock"
	"areyouhuman/internal/telemetry"
)

// options carries everything main resolved from the command line; threading
// it through run keeps the stages free of package-level state.
type options struct {
	stage       string
	jsonPath    string
	tracePath   string
	metricsPath string
	verbose     bool

	tel *telemetry.Set
}

func main() {
	var (
		stage       = flag.String("stage", "all", "which stage to run: all, preliminary, main, extensions, ablations, exposure, funnel, chaos")
		campaignN   = flag.Int("campaign", 0, "run a streaming campaign study of N URLs instead of the classic stages (0 = off)")
		provider    = flag.String("provider", "free", "campaign hosting model: free (shared apexes, IP reputation, sweeps) or dedicated (one domain per URL)")
		popName     = flag.String("population", "", "run a heterogeneous-victim exposure study with this population preset (uniform, paper, lain2025; empty = off)")
		victims     = flag.Int("victims", 0, "victim count for -population (0 = preset default)")
		seed        = flag.Int64("seed", 0, "experiment seed (0 = paper-calibrated default); the master seed when -replicas > 1")
		replicas    = flag.Int("replicas", 1, "independent replicas of the full study (1 = plain single run)")
		parallel    = flag.Int("parallel", 0, "worker goroutines for -replicas (0 = GOMAXPROCS); affects wall time only, never results")
		shardW      = flag.Int("shard-workers", 1, "intra-world scheduler workers over host-keyed shards (>= 1); affects wall time only, never output")
		scale       = flag.Float64("traffic-scale", 1, "crawler fleet volume scale (1 = Table 1 calibration)")
		mainTraffic = flag.Int("main-traffic", 0, "fleet requests per URL in the main stage (0 = default 200)")
		noCache     = flag.Bool("nocache", false, "disable the visit-path caches (DOM/scriptlet/render/site/kit); results are identical, only slower")
		chaosPath   = flag.String("chaos", "", "fault-injection plan (JSON file, see internal/chaos); faults are deterministic in (seed, plan)")
		chaosPreset = flag.String("chaos-preset", "", "built-in fault plan: flaky, outage, or degraded (empty/none = no faults)")
		jsonOut     = flag.String("json", "", "also write machine-readable results to this file (stage all/preliminary/main/extensions)")
		traceOut    = flag.String("trace", "", "write a JSONL telemetry trace (virtual-time spans and events) to this file")
		journalOut  = flag.String("journal", "", "write the URL lifecycle journal (JSONL, see cmd/phishtrace) to this file")
		metricsOut  = flag.String("metrics", "", "write a Prometheus-text metrics snapshot to this file after each stage")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile covering the whole run to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile (taken at exit after GC) to this file")
		verbose     = flag.Bool("v", false, "narrate stage progress and telemetry totals on stderr")
	)
	flag.Parse()

	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "phishfarm:", err)
		os.Exit(1)
	}

	opts := options{
		stage:       *stage,
		jsonPath:    *jsonOut,
		tracePath:   *traceOut,
		metricsPath: *metricsOut,
		verbose:     *verbose,
	}

	var traceBuf *bufio.Writer
	if opts.tracePath != "" || opts.metricsPath != "" || opts.verbose {
		opts.tel = &telemetry.Set{Metrics: telemetry.NewRegistry()}
		if opts.tracePath != "" {
			f, err := os.Create(opts.tracePath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "phishfarm:", err)
				os.Exit(1)
			}
			defer f.Close()
			traceBuf = bufio.NewWriterSize(f, 1<<20)
			opts.tel.Tracer = telemetry.NewTracer(traceBuf)
		}
	}

	plan, err := resolveChaos(*chaosPath, *chaosPreset)
	if err != nil {
		fmt.Fprintln(os.Stderr, "phishfarm:", err)
		os.Exit(1)
	}

	var journalWriter *journal.Writer
	var journalBuf *bufio.Writer
	if *journalOut != "" {
		f, err := os.Create(*journalOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "phishfarm:", err)
			os.Exit(1)
		}
		defer f.Close()
		journalBuf = bufio.NewWriterSize(f, 1<<20)
		journalWriter = journal.NewWriter(journalBuf)
	}

	shardWorkers, err := resolveShardWorkers(*shardW)
	if err != nil {
		fmt.Fprintln(os.Stderr, "phishfarm:", err)
		os.Exit(2)
	}
	opts.vlog("scheduler: %d shards, %d workers", simclock.DefaultShards, shardWorkers)

	setFlags := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })
	campaignCfg, campaignRun, err := resolveCampaign(*campaignN, *provider, setFlags["provider"])
	if err != nil {
		fmt.Fprintln(os.Stderr, "phishfarm:", err)
		os.Exit(2)
	}
	popSpec, popRun, err := resolvePopulation(*popName, *victims, *replicas, setFlags)
	if err != nil {
		fmt.Fprintln(os.Stderr, "phishfarm:", err)
		os.Exit(2)
	}

	cfg := experiment.Config{
		Seed:                 *seed,
		TrafficScale:         *scale,
		MainTrafficPerReport: *mainTraffic,
		NoCache:              *noCache,
		Telemetry:            opts.tel,
		Chaos:                plan,
		Journal:              journalWriter,
		ShardWorkers:         shardWorkers,
	}
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()
	f := core.New(cfg).WithContext(ctx)

	switch {
	case popRun:
		err = runPopulationCLI(f, opts, popSpec)
	case campaignRun:
		err = runCampaignCLI(f, opts, campaignCfg)
	case opts.stage == "chaos":
		err = chaosStudy(ctx, cfg, opts)
	case *replicas > 1:
		err = runReplicated(ctx, cfg, opts, *replicas, *parallel, *seed)
	default:
		err = run(f, cfg, opts)
	}
	if err == nil {
		opts.logShardCounts()
		err = opts.finish(traceBuf)
	} else if traceBuf != nil {
		traceBuf.Flush()
	}
	if journalWriter != nil {
		if ferr := journalWriter.Flush(); err == nil {
			err = ferr
		}
		if ferr := journalBuf.Flush(); err == nil {
			err = ferr
		}
		if err == nil {
			opts.vlog("journal: %d events -> %s", journalWriter.Lines(), *journalOut)
		}
	}
	if perr := stopProfiles(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "phishfarm:", err)
		os.Exit(1)
	}
}

// startProfiles begins CPU profiling and arranges the exit-time heap
// snapshot; the returned func stops the CPU profile and writes the heap
// profile (after a GC, so the numbers reflect live memory, not garbage).
func startProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

// finish flushes the trace and writes the final metrics snapshot.
func (o options) finish(traceBuf *bufio.Writer) error {
	if traceBuf != nil {
		if err := traceBuf.Flush(); err != nil {
			return err
		}
		if err := o.tel.T().Err(); err != nil {
			return err
		}
		o.vlog("trace: %d records -> %s", o.tel.T().Records(), o.tracePath)
	}
	if o.metricsPath != "" {
		if err := o.snapshotMetrics(); err != nil {
			return err
		}
		o.vlog("metrics: %d series -> %s", len(o.tel.M().Snapshot()), o.metricsPath)
	}
	return nil
}

// snapshotMetrics rewrites the metrics file with the current cumulative
// registry state; called after every stage so a crash mid-run still leaves
// the last completed stage's snapshot on disk.
func (o options) snapshotMetrics() error {
	if o.metricsPath == "" {
		return nil
	}
	out, err := os.Create(o.metricsPath)
	if err != nil {
		return err
	}
	defer out.Close()
	return o.tel.M().WritePrometheus(out)
}

func (o options) vlog(format string, args ...any) {
	if o.verbose {
		fmt.Fprintf(os.Stderr, "phishfarm: "+format+"\n", args...)
	}
}

// stageStart marks a stage in the trace and on stderr; the returned func
// closes the span, snapshots metrics, and reports wall time.
func (o options) stageStart(name string) func() {
	o.vlog("stage %s: start", name)
	start := time.Now()
	span := o.tel.T().Start("phishfarm.stage", telemetry.String("stage", name))
	return func() {
		span.End()
		if err := o.snapshotMetrics(); err != nil {
			fmt.Fprintln(os.Stderr, "phishfarm: metrics snapshot:", err)
		}
		o.vlog("stage %s: done in %v (%d telemetry series, %d trace records)",
			name, time.Since(start).Round(time.Millisecond),
			len(o.tel.M().Snapshot()), o.tel.T().Records())
	}
}

func writeJSON(opts options, exp experiment.Export) error {
	if opts.jsonPath == "" {
		return nil
	}
	out, err := os.Create(opts.jsonPath)
	if err != nil {
		return err
	}
	defer out.Close()
	if err := exp.WriteJSON(out); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", opts.jsonPath)
	return nil
}

func run(f *core.Framework, cfg experiment.Config, opts options) error {
	switch opts.stage {
	case "all":
		done := opts.stageStart("all")
		res, err := f.RunAll()
		if err != nil {
			return err
		}
		if err := writeJSON(opts, experiment.BuildExport(res.Table1, res.Main, res.Table3)); err != nil {
			return err
		}
		fmt.Print(res.Report())
		fmt.Println()
		if err := ablations(f, opts); err != nil {
			return err
		}
		if err := exposure(f, opts); err != nil {
			return err
		}
		err = funnel()
		done()
		return err
	case "preliminary":
		done := opts.stageStart("preliminary")
		rows, err := f.RunPreliminary()
		done()
		if err != nil {
			return err
		}
		if err := writeJSON(opts, experiment.BuildExport(rows, nil, nil)); err != nil {
			return err
		}
		fmt.Println("Table 1 — preliminary test (naked kits, 24h)")
		fmt.Print(experiment.RenderTable1(rows))
		return nil
	case "main":
		done := opts.stageStart("main")
		res, err := f.RunMain()
		done()
		if err != nil {
			return err
		}
		if err := writeJSON(opts, experiment.BuildExport(nil, res, nil)); err != nil {
			return err
		}
		fmt.Println("Table 2 — main experiment (105 protected URLs, 2 weeks)")
		fmt.Print(experiment.RenderTable2(res))
		fmt.Printf("drop-catch funnel: %s\n", res.Funnel)
		fmt.Printf("GSB alert-box average: %.0f min\n",
			experiment.AverageDuration(res.GSBAlertBoxTimes).Minutes())
		fmt.Printf("NetCraft session times:")
		for _, d := range res.NetCraftSessionTimes {
			fmt.Printf(" %.0fmin", d.Minutes())
		}
		fmt.Println()
		return nil
	case "extensions":
		done := opts.stageStart("extensions")
		rows, err := f.RunExtensions()
		done()
		if err != nil {
			return err
		}
		if err := writeJSON(opts, experiment.BuildExport(nil, nil, rows)); err != nil {
			return err
		}
		fmt.Println("Table 3 — client-side extensions (9 URLs, 3 visits each)")
		fmt.Print(experiment.RenderTable3(rows))
		return nil
	case "ablations":
		return ablations(f, opts)
	case "exposure":
		return exposure(f, opts)
	case "funnel":
		return funnel()
	default:
		return fmt.Errorf("unknown stage %q", opts.stage)
	}
}

// ProviderError reports an unknown -provider name.
type ProviderError struct {
	// Name is the rejected value.
	Name string
}

func (e *ProviderError) Error() string {
	return fmt.Sprintf("-provider must be one of %s, got %q",
		strings.Join(campaign.Providers(), "|"), e.Name)
}

// resolveCampaign validates the -campaign/-provider flag pair. A zero size
// means no campaign was requested (run=false); negative sizes and unknown
// provider names are rejected with typed errors so tests can assert on them,
// mirroring resolveShardWorkers. -provider without -campaign is an error:
// silently ignoring it would hide a typo'd invocation.
func resolveCampaign(n int, provider string, providerSet bool) (cc campaign.Config, run bool, err error) {
	if n == 0 {
		if providerSet {
			return cc, false, fmt.Errorf("-provider requires -campaign")
		}
		return cc, false, nil
	}
	if n < 0 {
		return cc, false, fmt.Errorf("-campaign: %w", &areyouhuman.CampaignSizeError{N: n})
	}
	ok := false
	for _, p := range campaign.Providers() {
		if provider == p {
			ok = true
			break
		}
	}
	if !ok {
		return cc, false, &ProviderError{Name: provider}
	}
	cc.URLs = n
	cc.Provider = provider
	// The CLI always measures the heap watermark so CI (and curious users)
	// can read peak memory off stderr; sampling happens at wave boundaries
	// and costs one forced GC per wave.
	cc.MeasureHeap = true
	return cc, true, nil
}

// runCampaignCLI runs the streaming campaign study. The deterministic table
// goes to stdout — CI compares it byte for byte across -shard-workers — and
// the wall-clock figures go to stderr under -v.
func runCampaignCLI(f *core.Framework, opts options, cc campaign.Config) error {
	done := opts.stageStart("campaign")
	res, err := f.RunCampaign(cc)
	done()
	if err != nil {
		return err
	}
	fmt.Print(res.RenderTable())
	opts.vlog("campaign: %.0f URLs/sec wall, %.2fs total, peak heap %.1f MiB",
		res.URLsPerSec, res.WallSeconds, float64(res.PeakHeapBytes)/(1<<20))
	return nil
}

// resolveShardWorkers validates the -shard-workers flag. phishfarm always
// runs the sharded scheduler — one worker is the sequential baseline every
// other worker count must match byte for byte — so zero and negative counts
// are rejected rather than silently clamped. The typed error lives in the
// areyouhuman facade (see its errors.go).
func resolveShardWorkers(n int) (int, error) {
	if n < 1 {
		return 0, fmt.Errorf("-shard-workers: %w", &areyouhuman.ShardWorkersError{N: n, Min: 1})
	}
	return n, nil
}

// resolvePopulation validates the -population/-victims flag group against
// the rest of the invocation. The population replaces the victim-traffic
// model, so -traffic-scale is mutually exclusive with it, as are -campaign
// (even -campaign 0: a campaign flag next to a population spec is a typo'd
// invocation, not a no-op) and -replicas. Conflicts surface as the facade's
// typed *areyouhuman.PopulationError so tests and scripts can classify them.
func resolvePopulation(name string, victims, replicas int, setFlags map[string]bool) (population.Spec, bool, error) {
	var spec population.Spec
	if !setFlags["population"] {
		if setFlags["victims"] {
			return spec, false, &areyouhuman.PopulationError{Reason: "-victims requires -population"}
		}
		return spec, false, nil
	}
	if name == "" {
		return spec, false, &areyouhuman.PopulationError{Reason: "empty population spec; pick a preset: " + strings.Join(population.Presets(), "|")}
	}
	if setFlags["campaign"] {
		return spec, false, &areyouhuman.PopulationError{Reason: "-campaign and -population are mutually exclusive"}
	}
	if setFlags["traffic-scale"] {
		return spec, false, &areyouhuman.PopulationError{Reason: "-traffic-scale and -population are mutually exclusive (the population is the victim-traffic model)"}
	}
	if replicas > 1 {
		return spec, false, &areyouhuman.PopulationError{Reason: "-replicas does not compose with -population"}
	}
	if victims < 0 {
		return spec, false, &areyouhuman.PopulationError{Reason: fmt.Sprintf("-victims must be >= 0, got %d", victims)}
	}
	spec, err := population.Preset(name)
	if err != nil {
		return spec, false, err
	}
	spec.Size = victims
	// Like campaigns, the CLI always measures the heap watermark so CI can
	// read peak memory off stderr; sampling happens at pump-batch boundaries.
	spec.MeasureHeap = true
	return spec, true, nil
}

// runPopulationCLI runs the heterogeneous-victim exposure study. The
// deterministic table goes to stdout — CI compares it byte for byte across
// -shard-workers — and the wall-clock figures go to stderr under -v.
func runPopulationCLI(f *core.Framework, opts options, spec population.Spec) error {
	done := opts.stageStart("population")
	res, err := f.RunPopulation(spec)
	done()
	if err != nil {
		return err
	}
	fmt.Print(res.RenderTable())
	opts.vlog("population: %.0f victims/sec wall, %.2fs total, peak heap %.1f MiB",
		res.VictimsPerSec, res.WallSeconds, float64(res.PeakHeapBytes)/(1<<20))
	return nil
}

// logShardCounts narrates the per-shard event totals recorded by each
// world's Close (verbose runs only; the counts are key-derived and therefore
// identical for every -shard-workers value).
func (o options) logShardCounts() {
	if !o.verbose {
		return
	}
	for _, p := range o.tel.M().Snapshot() {
		if p.Name == experiment.MetricShardEvents {
			o.vlog("shard %s: %.0f events", p.Labels["shard"], p.Value)
		}
	}
}

// resolveChaos loads the fault plan from -chaos or -chaos-preset (at most
// one may be set); both empty means no fault injection.
func resolveChaos(path, preset string) (*chaos.Plan, error) {
	if path != "" && preset != "" {
		return nil, fmt.Errorf("-chaos and -chaos-preset are mutually exclusive")
	}
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return chaos.ParsePlan(data)
	}
	return chaos.Preset(preset)
}

// chaosStudy runs the fault-injection comparison: the main experiment once
// clean, then once per built-in preset, and prints the delta table.
func chaosStudy(ctx context.Context, cfg experiment.Config, opts options) error {
	done := opts.stageStart("chaos")
	defer done()
	base := cfg
	base.Chaos = nil // arms add their own plans; the baseline must be clean
	study, err := core.RunChaosStudy(ctx, base, chaos.PresetNames())
	if err != nil {
		return err
	}
	fmt.Print(study.Report())
	return nil
}

// runReplicated executes the replicated study: the full pipeline (tables,
// ablations, exposure) in n independent worlds, aggregated. Only the default
// stage makes sense replicated — the aggregate spans the whole study.
func runReplicated(ctx context.Context, cfg experiment.Config, opts options, n, workers int, masterSeed int64) error {
	if opts.stage != "all" {
		return fmt.Errorf("-replicas %d requires -stage all (the aggregate spans the full study), got -stage %s", n, opts.stage)
	}
	done := opts.stageStart("replicas")
	rs, err := core.RunReplicas(core.ReplicaOptions{
		Replicas:   n,
		Parallel:   workers,
		MasterSeed: masterSeed,
		Base:       cfg,
		Ctx:        ctx,
	})
	done()
	if err != nil {
		return err
	}
	if opts.jsonPath != "" {
		out, err := os.Create(opts.jsonPath)
		if err != nil {
			return err
		}
		defer out.Close()
		if err := rs.WriteJSON(out); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", opts.jsonPath)
	}
	fmt.Print(rs.Report())
	return nil
}

func ablations(f *core.Framework, opts options) error {
	done := opts.stageStart("ablations")
	defer done()
	fmt.Println("Ablation studies")

	alert, err := f.RunAlertConfirmAblation()
	if err != nil {
		return err
	}
	fmt.Printf("  alert-confirm for all engines: %d/%d detected (baseline %d/%d — only GSB)\n",
		alert.ConfirmAll, alert.Total, alert.BaselineDetected, alert.Total)

	form, err := f.RunFormSubmitAblation()
	if err != nil {
		return err
	}
	fmt.Printf("  without form submission: %d/%d session bypasses (baseline %d/%d)\n",
		form.NoSubmitBypasses, form.Total, form.BaselineBypasses, form.Total)

	prov, err := f.RunKitProvenanceAblation()
	if err != nil {
		return err
	}
	fmt.Printf("  Gmail kit at a fingerprint-only engine: scratch-built detected=%v, cloned detected=%v\n",
		prov.ScratchDetected, prov.ClonedDetected)

	shar, err := f.RunFeedSharingAblation()
	if err != nil {
		return err
	}
	fmt.Printf("  feed sharing severed: %d cross-feed appearances (baseline %d)\n",
		shar.SeveredCrossFeeds, shar.BaselineCrossFeeds)

	cache := f.RunVerdictCacheAblation()
	fmt.Printf("  verdict cache: fresh listing masked within TTL=%v, visible without cache=%v\n",
		cache.MaskedWithCache, cache.VisibleWithoutCache)

	cloak, err := f.RunCloakingBaseline()
	if err != nil {
		return err
	}
	fmt.Printf("  cloaking baseline (Oest et al. context): %d/%d detected (%.0f%%), avg delay %.0f min\n",
		cloak.Detected, cloak.Total,
		100*float64(cloak.Detected)/float64(cloak.Total),
		cloak.AvgDelay.Minutes())
	return nil
}

func exposure(f *core.Framework, opts options) error {
	done := opts.stageStart("exposure")
	defer done()
	results, err := f.RunExposureStudy()
	if err != nil {
		return err
	}
	fmt.Println("Victim-exposure study (1 victim/hour for 3 days, GSB-protected browsers)")
	fmt.Print(core.RenderExposure(results))
	return nil
}

func funnel() error {
	start := time.Now()
	f, err := core.FunnelAtPaperScale()
	if err != nil {
		return err
	}
	fmt.Printf("Drop-catch funnel at paper scale: %s (computed in %v)\n", f, time.Since(start).Round(time.Millisecond))
	return nil
}
