// Command phishfarm runs the paper's study end to end and prints the
// regenerated tables.
//
// Usage:
//
//	phishfarm [-stage all|preliminary|main|extensions|ablations|funnel]
//	          [-seed N] [-traffic-scale F] [-main-traffic N]
//
// The default stage runs everything: Table 1 (preliminary test), Table 2
// (main experiment), Table 3 (extensions), the headline claims comparison,
// the ablation studies, and the paper-scale drop-catch funnel.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"areyouhuman/internal/core"
	"areyouhuman/internal/experiment"
)

func main() {
	var (
		stage       = flag.String("stage", "all", "which stage to run: all, preliminary, main, extensions, ablations, exposure, funnel")
		seed        = flag.Int64("seed", 0, "experiment seed (0 = paper-calibrated default)")
		scale       = flag.Float64("traffic-scale", 1, "crawler fleet volume scale (1 = Table 1 calibration)")
		mainTraffic = flag.Int("main-traffic", 0, "fleet requests per URL in the main stage (0 = default 200)")
		jsonOut     = flag.String("json", "", "also write machine-readable results to this file (stage all/preliminary/main/extensions)")
	)
	flag.Parse()
	jsonPath = *jsonOut

	cfg := experiment.Config{
		Seed:                 *seed,
		TrafficScale:         *scale,
		MainTrafficPerReport: *mainTraffic,
	}
	f := core.New(cfg)

	if err := run(f, cfg, *stage); err != nil {
		fmt.Fprintln(os.Stderr, "phishfarm:", err)
		os.Exit(1)
	}
}

// jsonPath, when set, receives a machine-readable export of the stage.
var jsonPath string

func writeJSON(exp experiment.Export) error {
	if jsonPath == "" {
		return nil
	}
	out, err := os.Create(jsonPath)
	if err != nil {
		return err
	}
	defer out.Close()
	if err := exp.WriteJSON(out); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", jsonPath)
	return nil
}

func run(f *core.Framework, cfg experiment.Config, stage string) error {
	switch stage {
	case "all":
		res, err := f.RunAll()
		if err != nil {
			return err
		}
		if err := writeJSON(experiment.BuildExport(res.Table1, res.Main, res.Table3)); err != nil {
			return err
		}
		fmt.Print(res.Report())
		fmt.Println()
		if err := ablations(f); err != nil {
			return err
		}
		if err := exposure(f); err != nil {
			return err
		}
		return funnel()
	case "preliminary":
		rows, err := f.RunPreliminary()
		if err != nil {
			return err
		}
		if err := writeJSON(experiment.BuildExport(rows, nil, nil)); err != nil {
			return err
		}
		fmt.Println("Table 1 — preliminary test (naked kits, 24h)")
		fmt.Print(experiment.RenderTable1(rows))
		return nil
	case "main":
		res, err := f.RunMain()
		if err != nil {
			return err
		}
		if err := writeJSON(experiment.BuildExport(nil, res, nil)); err != nil {
			return err
		}
		fmt.Println("Table 2 — main experiment (105 protected URLs, 2 weeks)")
		fmt.Print(experiment.RenderTable2(res))
		fmt.Printf("drop-catch funnel: %s\n", res.Funnel)
		fmt.Printf("GSB alert-box average: %.0f min\n",
			experiment.AverageDuration(res.GSBAlertBoxTimes).Minutes())
		fmt.Printf("NetCraft session times:")
		for _, d := range res.NetCraftSessionTimes {
			fmt.Printf(" %.0fmin", d.Minutes())
		}
		fmt.Println()
		return nil
	case "extensions":
		rows, err := f.RunExtensions()
		if err != nil {
			return err
		}
		if err := writeJSON(experiment.BuildExport(nil, nil, rows)); err != nil {
			return err
		}
		fmt.Println("Table 3 — client-side extensions (9 URLs, 3 visits each)")
		fmt.Print(experiment.RenderTable3(rows))
		return nil
	case "ablations":
		return ablations(f)
	case "exposure":
		return exposure(f)
	case "funnel":
		return funnel()
	default:
		return fmt.Errorf("unknown stage %q", stage)
	}
}

func ablations(f *core.Framework) error {
	fmt.Println("Ablation studies")

	alert, err := f.RunAlertConfirmAblation()
	if err != nil {
		return err
	}
	fmt.Printf("  alert-confirm for all engines: %d/%d detected (baseline %d/%d — only GSB)\n",
		alert.ConfirmAll, alert.Total, alert.BaselineDetected, alert.Total)

	form, err := f.RunFormSubmitAblation()
	if err != nil {
		return err
	}
	fmt.Printf("  without form submission: %d/%d session bypasses (baseline %d/%d)\n",
		form.NoSubmitBypasses, form.Total, form.BaselineBypasses, form.Total)

	prov, err := f.RunKitProvenanceAblation()
	if err != nil {
		return err
	}
	fmt.Printf("  Gmail kit at a fingerprint-only engine: scratch-built detected=%v, cloned detected=%v\n",
		prov.ScratchDetected, prov.ClonedDetected)

	shar, err := f.RunFeedSharingAblation()
	if err != nil {
		return err
	}
	fmt.Printf("  feed sharing severed: %d cross-feed appearances (baseline %d)\n",
		shar.SeveredCrossFeeds, shar.BaselineCrossFeeds)

	cache := f.RunVerdictCacheAblation()
	fmt.Printf("  verdict cache: fresh listing masked within TTL=%v, visible without cache=%v\n",
		cache.MaskedWithCache, cache.VisibleWithoutCache)

	cloak, err := f.RunCloakingBaseline()
	if err != nil {
		return err
	}
	fmt.Printf("  cloaking baseline (Oest et al. context): %d/%d detected (%.0f%%), avg delay %.0f min\n",
		cloak.Detected, cloak.Total,
		100*float64(cloak.Detected)/float64(cloak.Total),
		cloak.AvgDelay.Minutes())
	return nil
}

func exposure(f *core.Framework) error {
	results, err := f.RunExposureStudy()
	if err != nil {
		return err
	}
	fmt.Println("Victim-exposure study (1 victim/hour for 3 days, GSB-protected browsers)")
	fmt.Print(core.RenderExposure(results))
	return nil
}

func funnel() error {
	start := time.Now()
	f, err := core.FunnelAtPaperScale()
	if err != nil {
		return err
	}
	fmt.Printf("Drop-catch funnel at paper scale: %s (computed in %v)\n", f, time.Since(start).Round(time.Millisecond))
	return nil
}
