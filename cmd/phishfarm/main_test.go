package main

import (
	"errors"
	"strings"
	"testing"

	"areyouhuman"
	"areyouhuman/internal/campaign"
	"areyouhuman/internal/population"
)

func TestResolveShardWorkersRejectsNonPositive(t *testing.T) {
	for _, n := range []int{0, -1, -8} {
		got, err := resolveShardWorkers(n)
		if err == nil {
			t.Fatalf("resolveShardWorkers(%d) = %d, want error", n, got)
		}
		var swe *areyouhuman.ShardWorkersError
		if !errors.As(err, &swe) {
			t.Fatalf("resolveShardWorkers(%d) error type %T, want *areyouhuman.ShardWorkersError", n, err)
		}
		if swe.N != n {
			t.Errorf("ShardWorkersError.N = %d, want %d", swe.N, n)
		}
		if !strings.Contains(err.Error(), ">= 1") {
			t.Errorf("error %q should state the >= 1 requirement", err)
		}
	}
}

func TestResolveShardWorkersAcceptsPositive(t *testing.T) {
	for _, n := range []int{1, 4, 64} {
		got, err := resolveShardWorkers(n)
		if err != nil || got != n {
			t.Fatalf("resolveShardWorkers(%d) = %d, %v; want %d, nil", n, got, err, n)
		}
	}
}

func TestResolveCampaignRejectsNegativeSize(t *testing.T) {
	for _, n := range []int{-1, -100} {
		_, run, err := resolveCampaign(n, campaign.ProviderFree, false)
		if err == nil || run {
			t.Fatalf("resolveCampaign(%d) run=%v err=%v, want validation error", n, run, err)
		}
		var cse *areyouhuman.CampaignSizeError
		if !errors.As(err, &cse) {
			t.Fatalf("resolveCampaign(%d) error type %T, want *areyouhuman.CampaignSizeError", n, err)
		}
		if cse.N != n {
			t.Errorf("CampaignSizeError.N = %d, want %d", cse.N, n)
		}
		if !errors.Is(err, areyouhuman.ErrCampaignSize) {
			t.Errorf("error %v should unwrap to ErrCampaignSize", err)
		}
		if !strings.Contains(err.Error(), ">= 1") {
			t.Errorf("error %q should state the >= 1 requirement", err)
		}
	}
}

func TestResolveCampaignRejectsUnknownProvider(t *testing.T) {
	for _, name := range []string{"", "clown", "FREE"} {
		_, run, err := resolveCampaign(100, name, true)
		if err == nil || run {
			t.Fatalf("resolveCampaign(100, %q) run=%v err=%v, want validation error", name, run, err)
		}
		var pe *ProviderError
		if !errors.As(err, &pe) {
			t.Fatalf("resolveCampaign(100, %q) error type %T, want *ProviderError", name, err)
		}
		if pe.Name != name {
			t.Errorf("ProviderError.Name = %q, want %q", pe.Name, name)
		}
		for _, p := range campaign.Providers() {
			if !strings.Contains(err.Error(), p) {
				t.Errorf("error %q should list valid provider %q", err, p)
			}
		}
	}
}

func TestResolveCampaignOffAndOn(t *testing.T) {
	// -campaign absent: no campaign, no error.
	if cc, run, err := resolveCampaign(0, campaign.ProviderFree, false); err != nil || run || cc.URLs != 0 {
		t.Fatalf("resolveCampaign(0) = %+v run=%v err=%v, want off", cc, run, err)
	}
	// -provider without -campaign is a typo'd invocation, not a no-op.
	if _, run, err := resolveCampaign(0, campaign.ProviderDedicated, true); err == nil || run {
		t.Fatalf("resolveCampaign(0, provider set) run=%v err=%v, want error", run, err)
	}
	// Valid pair passes through, with heap measurement always on for the CLI.
	for _, p := range campaign.Providers() {
		cc, run, err := resolveCampaign(20_000, p, true)
		if err != nil || !run {
			t.Fatalf("resolveCampaign(20000, %q) run=%v err=%v, want ok", p, run, err)
		}
		if cc.URLs != 20_000 || cc.Provider != p || !cc.MeasureHeap {
			t.Errorf("resolveCampaign(20000, %q) = %+v, want URLs/Provider/MeasureHeap set", p, cc)
		}
	}
}

// flags is shorthand for the flag.Visit set resolvePopulation receives.
func flags(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

func TestResolvePopulationOff(t *testing.T) {
	if _, run, err := resolvePopulation("", 0, 1, flags()); err != nil || run {
		t.Fatalf("no flags: run=%v err=%v, want off", run, err)
	}
	// -victims without -population is a typo'd invocation, not a no-op.
	_, run, err := resolvePopulation("", 5000, 1, flags("victims"))
	var perr *areyouhuman.PopulationError
	if err == nil || run || !errors.As(err, &perr) {
		t.Fatalf("-victims alone: run=%v err=%v (%T), want *areyouhuman.PopulationError", run, err, err)
	}
}

func TestResolvePopulationFlagConflicts(t *testing.T) {
	cases := []struct {
		name     string
		set      map[string]bool
		replicas int
		wantIn   string
	}{
		{"empty spec", flags("population"), 1, "empty population spec"},
		{"campaign set", flags("population", "campaign"), 1, "-campaign"},
		{"zero campaign set", flags("population", "campaign"), 1, "mutually exclusive"},
		{"traffic-scale set", flags("population", "traffic-scale"), 1, "-traffic-scale"},
		{"replicas", flags("population"), 4, "-replicas"},
	}
	for _, tc := range cases {
		name := "paper"
		if tc.wantIn == "empty population spec" {
			name = ""
		}
		_, run, err := resolvePopulation(name, 0, tc.replicas, tc.set)
		if err == nil || run {
			t.Fatalf("%s: run=%v err=%v, want typed error", tc.name, run, err)
		}
		var perr *areyouhuman.PopulationError
		if !errors.As(err, &perr) {
			t.Fatalf("%s: error type %T, want *areyouhuman.PopulationError", tc.name, err)
		}
		if !strings.Contains(err.Error(), tc.wantIn) {
			t.Errorf("%s: error %q should mention %q", tc.name, err, tc.wantIn)
		}
	}
}

func TestResolvePopulationPresetAndSize(t *testing.T) {
	if _, run, err := resolvePopulation("crowd", 0, 1, flags("population")); err == nil || run ||
		!errors.Is(err, areyouhuman.ErrPopulationPreset) {
		t.Fatalf("unknown preset: run=%v err=%v, want ErrPopulationPreset", run, err)
	}
	if _, run, err := resolvePopulation("paper", -5, 1, flags("population", "victims")); err == nil || run {
		t.Fatalf("negative victims: run=%v err=%v, want error", run, err)
	}
	spec, run, err := resolvePopulation("lain2025", 50_000, 1, flags("population", "victims"))
	if err != nil || !run {
		t.Fatalf("valid invocation: run=%v err=%v", run, err)
	}
	if spec.Name != "lain2025" || spec.Size != 50_000 || !spec.MeasureHeap {
		t.Errorf("spec = %+v, want lain2025 sized 50000 with MeasureHeap", spec)
	}
	if len(spec.Cohorts) == 0 {
		t.Error("preset spec carries no cohorts")
	}
	// Unsized: the preset default applies downstream (Size stays 0 here).
	spec, run, err = resolvePopulation("uniform", 0, 1, flags("population"))
	if err != nil || !run || spec.Size != 0 {
		t.Fatalf("unsized preset: spec=%+v run=%v err=%v, want Size 0 passthrough", spec, run, err)
	}
	if spec.WithDefaults().Size != population.DefaultSize {
		t.Errorf("unsized preset should default to %d victims", population.DefaultSize)
	}
}
