package main

import (
	"errors"
	"strings"
	"testing"

	"areyouhuman/internal/campaign"
)

func TestResolveShardWorkersRejectsNonPositive(t *testing.T) {
	for _, n := range []int{0, -1, -8} {
		got, err := resolveShardWorkers(n)
		if err == nil {
			t.Fatalf("resolveShardWorkers(%d) = %d, want error", n, got)
		}
		var swe *ShardWorkersError
		if !errors.As(err, &swe) {
			t.Fatalf("resolveShardWorkers(%d) error type %T, want *ShardWorkersError", n, err)
		}
		if swe.N != n {
			t.Errorf("ShardWorkersError.N = %d, want %d", swe.N, n)
		}
		if !strings.Contains(err.Error(), ">= 1") {
			t.Errorf("error %q should state the >= 1 requirement", err)
		}
	}
}

func TestResolveShardWorkersAcceptsPositive(t *testing.T) {
	for _, n := range []int{1, 4, 64} {
		got, err := resolveShardWorkers(n)
		if err != nil || got != n {
			t.Fatalf("resolveShardWorkers(%d) = %d, %v; want %d, nil", n, got, err, n)
		}
	}
}

func TestResolveCampaignRejectsNegativeSize(t *testing.T) {
	for _, n := range []int{-1, -100} {
		_, run, err := resolveCampaign(n, campaign.ProviderFree, false)
		if err == nil || run {
			t.Fatalf("resolveCampaign(%d) run=%v err=%v, want validation error", n, run, err)
		}
		var cse *CampaignSizeError
		if !errors.As(err, &cse) {
			t.Fatalf("resolveCampaign(%d) error type %T, want *CampaignSizeError", n, err)
		}
		if cse.N != n {
			t.Errorf("CampaignSizeError.N = %d, want %d", cse.N, n)
		}
		if !strings.Contains(err.Error(), ">= 1") {
			t.Errorf("error %q should state the >= 1 requirement", err)
		}
	}
}

func TestResolveCampaignRejectsUnknownProvider(t *testing.T) {
	for _, name := range []string{"", "clown", "FREE"} {
		_, run, err := resolveCampaign(100, name, true)
		if err == nil || run {
			t.Fatalf("resolveCampaign(100, %q) run=%v err=%v, want validation error", name, run, err)
		}
		var pe *ProviderError
		if !errors.As(err, &pe) {
			t.Fatalf("resolveCampaign(100, %q) error type %T, want *ProviderError", name, err)
		}
		if pe.Name != name {
			t.Errorf("ProviderError.Name = %q, want %q", pe.Name, name)
		}
		for _, p := range campaign.Providers() {
			if !strings.Contains(err.Error(), p) {
				t.Errorf("error %q should list valid provider %q", err, p)
			}
		}
	}
}

func TestResolveCampaignOffAndOn(t *testing.T) {
	// -campaign absent: no campaign, no error.
	if cc, run, err := resolveCampaign(0, campaign.ProviderFree, false); err != nil || run || cc.URLs != 0 {
		t.Fatalf("resolveCampaign(0) = %+v run=%v err=%v, want off", cc, run, err)
	}
	// -provider without -campaign is a typo'd invocation, not a no-op.
	if _, run, err := resolveCampaign(0, campaign.ProviderDedicated, true); err == nil || run {
		t.Fatalf("resolveCampaign(0, provider set) run=%v err=%v, want error", run, err)
	}
	// Valid pair passes through, with heap measurement always on for the CLI.
	for _, p := range campaign.Providers() {
		cc, run, err := resolveCampaign(20_000, p, true)
		if err != nil || !run {
			t.Fatalf("resolveCampaign(20000, %q) run=%v err=%v, want ok", p, run, err)
		}
		if cc.URLs != 20_000 || cc.Provider != p || !cc.MeasureHeap {
			t.Errorf("resolveCampaign(20000, %q) = %+v, want URLs/Provider/MeasureHeap set", p, cc)
		}
	}
}
