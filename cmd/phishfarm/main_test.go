package main

import (
	"errors"
	"strings"
	"testing"
)

func TestResolveShardWorkersRejectsNonPositive(t *testing.T) {
	for _, n := range []int{0, -1, -8} {
		got, err := resolveShardWorkers(n)
		if err == nil {
			t.Fatalf("resolveShardWorkers(%d) = %d, want error", n, got)
		}
		var swe *ShardWorkersError
		if !errors.As(err, &swe) {
			t.Fatalf("resolveShardWorkers(%d) error type %T, want *ShardWorkersError", n, err)
		}
		if swe.N != n {
			t.Errorf("ShardWorkersError.N = %d, want %d", swe.N, n)
		}
		if !strings.Contains(err.Error(), ">= 1") {
			t.Errorf("error %q should state the >= 1 requirement", err)
		}
	}
}

func TestResolveShardWorkersAcceptsPositive(t *testing.T) {
	for _, n := range []int{1, 4, 64} {
		got, err := resolveShardWorkers(n)
		if err != nil || got != n {
			t.Fatalf("resolveShardWorkers(%d) = %d, %v; want %d, nil", n, got, err, n)
		}
	}
}
