// Command botprobe deploys one evasion-protected phishing site in a fresh
// simulated world and runs a single engine's bot against it, printing the
// browser trace, the server's serve-decision log, and the verdict. It is the
// fastest way to see *why* a given engine does or does not bypass a
// technique.
//
// Usage:
//
//	botprobe -engine gsb -technique alertbox [-brand paypal]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"areyouhuman/internal/engines"
	"areyouhuman/internal/evasion"
	"areyouhuman/internal/experiment"
	"areyouhuman/internal/phishkit"
)

func main() {
	var (
		engineFlag = flag.String("engine", "gsb", "engine key: gsb, netcraft, apwg, openphish, phishtank, smartscreen, ysb")
		techFlag   = flag.String("technique", "alertbox", "evasion technique: none, alertbox, session, recaptcha")
		brandFlag  = flag.String("brand", "paypal", "target brand: paypal, facebook, gmail")
		hours      = flag.Int("hours", 24, "virtual hours to run after reporting")
	)
	flag.Parse()

	profile, ok := engines.Profiles()[strings.ToLower(*engineFlag)]
	if !ok {
		fmt.Fprintf(os.Stderr, "botprobe: unknown engine %q (known: %s)\n", *engineFlag, strings.Join(engines.Keys(), ", "))
		os.Exit(2)
	}
	technique, err := evasion.Parse(*techFlag)
	if err != nil {
		fatal(err)
	}
	var brand phishkit.Brand
	switch strings.ToLower(*brandFlag) {
	case "paypal":
		brand = phishkit.PayPal
	case "facebook":
		brand = phishkit.Facebook
	case "gmail":
		brand = phishkit.Gmail
	default:
		fmt.Fprintf(os.Stderr, "botprobe: unknown brand %q\n", *brandFlag)
		os.Exit(2)
	}

	w := experiment.NewWorld(experiment.Config{TrafficScale: 0.005})
	d, err := w.Deploy("probe-target.com", experiment.MountSpec{Brand: brand, Technique: technique})
	if err != nil {
		fatal(err)
	}
	url := d.Mounts[0].URL
	fmt.Printf("deployed %s kit behind %s at %s\n", brand, technique, url)
	fmt.Printf("engine: %s — scripts=%v alerts=%s forms=%s classifier=%s\n\n",
		profile.Name, profile.ExecuteScripts, profile.AlertPolicy, profile.FormPolicy, profile.Power)

	if err := w.ReportTo(d, profile.Key); err != nil {
		fatal(err)
	}
	w.Sched.RunFor(time.Duration(*hours) * time.Hour)

	fmt.Println("server serve-decision log:")
	counts := d.Log.ServeCounts()
	kinds := make([]evasion.ServeKind, 0, len(counts))
	for kind := range counts {
		kinds = append(kinds, kind)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, kind := range kinds {
		fmt.Printf("  %-10s x%d\n", kind, counts[kind])
	}
	fmt.Printf("payload reached: %d times\n", len(d.Log.PayloadServes()))
	fmt.Printf("host traffic: %d requests from %d unique IPs\n", d.Log.Requests(), d.Log.UniqueIPs())

	eng := w.Engines[profile.Key]
	if entry, listed := eng.List.Lookup(url); listed {
		fmt.Printf("\nVERDICT: BLACKLISTED by %s at %s (%.0f min after report)\n",
			profile.Name, entry.AddedAt.UTC().Format(time.RFC3339),
			entry.AddedAt.Sub(d.ReportedAt).Minutes())
	} else {
		fmt.Printf("\nVERDICT: NOT DETECTED by %s after %d virtual hours\n", profile.Name, *hours)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "botprobe:", err)
	os.Exit(1)
}
