module areyouhuman

go 1.22
