package areyouhuman

// This file collects the facade's error surface: sentinel values re-exported
// from the internal packages (errors.Is targets) and the typed validation
// errors the options and CLIs return (errors.As targets). Callers never need
// to import an internal package to classify a failure.

import (
	"errors"
	"fmt"
	"strings"

	"areyouhuman/internal/campaign"
	"areyouhuman/internal/chaos"
	"areyouhuman/internal/experiment"
	"areyouhuman/internal/population"
	"areyouhuman/internal/simclock"
)

// Sentinel errors, re-exported so callers can errors.Is without importing
// internal packages.
var (
	// ErrClosed reports events scheduled on a retired world.
	ErrClosed = simclock.ErrClosed
	// ErrUnknownEngine reports a report submitted to a nonexistent engine.
	ErrUnknownEngine = experiment.ErrUnknownEngine
	// ErrDeployFailed matches every failed deployment (errors.As against
	// *DeployError recovers the domain and cause).
	ErrDeployFailed = experiment.ErrDeployFailed
	// ErrUnknownPreset reports an unrecognised chaos preset name.
	ErrUnknownPreset = chaos.ErrUnknownPreset
	// ErrCampaignProvider reports an unknown campaign provider name.
	ErrCampaignProvider = campaign.ErrProvider
	// ErrCampaignSize reports a non-positive campaign URL count
	// (*CampaignSizeError carries the rejected value).
	ErrCampaignSize = campaign.ErrSize
	// ErrPopulationSpec matches every invalid population spec
	// (*PopulationError carries the reason).
	ErrPopulationSpec = population.ErrSpec
	// ErrPopulationPreset reports an unknown population preset name.
	ErrPopulationPreset = population.ErrPreset
	// ErrOptionConflict matches every rejected option combination — a
	// campaign provider without a campaign, campaigns with replicas, and
	// whatever composition rule comes next. (Population compositions keep
	// reporting *PopulationError for compatibility.)
	ErrOptionConflict = errors.New("conflicting options")
)

// wrapFacade prefixes err with the facade vocabulary exactly once: causes
// that already speak "areyouhuman:" (options, facade helpers) pass through
// unstuttered, everything else is wrapped so errors.Is/As keep working on
// the chain.
func wrapFacade(err error) error {
	if strings.HasPrefix(err.Error(), "areyouhuman: ") {
		return err
	}
	return fmt.Errorf("areyouhuman: %w", err)
}

// DeployError is the concrete deployment failure (domain + cause).
type DeployError = experiment.DeployError

// PopulationError reports an invalid population request: a malformed spec,
// or a composition the population study does not support (replicas,
// campaigns, conflicting CLI flags). Err, when set, is the underlying
// cause — spec validation failures unwrap to ErrPopulationSpec.
type PopulationError struct {
	// Reason says what was wrong, in CLI-printable form.
	Reason string
	// Err is the underlying cause, if any.
	Err error
}

func (e *PopulationError) Error() string {
	if e.Err != nil {
		// Causes from internal/population already speak the "population:"
		// vocabulary; don't stutter the prefix and reason around them.
		if msg := e.Err.Error(); strings.HasPrefix(msg, "population: ") {
			return msg
		}
		return fmt.Sprintf("population: %s: %v", e.Reason, e.Err)
	}
	return "population: " + e.Reason
}

func (e *PopulationError) Unwrap() error { return e.Err }

// ShardWorkersError reports an out-of-range shard worker count. The facade
// accepts 0 (the classic serial scheduler, Min = 0); phishfarm always runs
// sharded and requires at least one worker (Min = 1).
type ShardWorkersError struct {
	// N is the rejected value.
	N int
	// Min is the smallest acceptable value in the rejecting context.
	Min int
}

func (e *ShardWorkersError) Error() string {
	return fmt.Sprintf("shard workers must be >= %d, got %d", e.Min, e.N)
}

// CampaignSizeError reports a non-positive campaign URL count. It unwraps
// to ErrCampaignSize.
type CampaignSizeError struct {
	// N is the rejected value.
	N int
}

func (e *CampaignSizeError) Error() string {
	return fmt.Sprintf("campaign size must be >= 1, got %d", e.N)
}

func (e *CampaignSizeError) Unwrap() error { return ErrCampaignSize }
